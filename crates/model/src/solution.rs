//! Evaluated placements: server counts, cost and power of a solution.
//!
//! [`SolutionCounts`] tallies the quantities of §2.2 of the paper — `nᵢ`
//! (new servers at mode `i`), `eᵢᵢ'` (reused servers re-moded `i → i'`) and
//! `kᵢ` (deleted pre-existing servers of original mode `i`) — from which both
//! the cost (Eq. 4) and the power (Eq. 3) of the placement follow.

use crate::assignment::Assignment;
use crate::error::ModelError;
use crate::instance::Instance;
use crate::placement::Placement;
use serde::{Deserialize, Serialize};

/// How to decide the operated mode of each server when evaluating.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModePolicy {
    /// Honor the modes stored in the placement (mode-as-decision semantics;
    /// the DP algorithms produce such placements).
    Assigned,
    /// Re-mode every server to the smallest mode that fits its load — the
    /// load-determined `mode(j)` of §2.2 (`W_{i−1} < req_j ≤ W_i`).
    LowestFeasible,
}

/// The `nᵢ` / `eᵢᵢ'` / `kᵢ` tallies of a placement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolutionCounts {
    /// `new_by_mode[i]` = `nᵢ`: new servers operated at mode `i`.
    pub new_by_mode: Vec<u64>,
    /// `reused[i][i']` = `eᵢᵢ'`: pre-existing servers re-moded `i → i'`.
    pub reused: Vec<Vec<u64>>,
    /// `deleted_by_mode[i]` = `kᵢ`: pre-existing servers (original mode `i`)
    /// not reused.
    pub deleted_by_mode: Vec<u64>,
}

impl SolutionCounts {
    /// Zeroed tallies for `modes` modes.
    pub fn zero(modes: usize) -> Self {
        SolutionCounts {
            new_by_mode: vec![0; modes],
            reused: vec![vec![0; modes]; modes],
            deleted_by_mode: vec![0; modes],
        }
    }

    /// Total number of servers `R = Σnᵢ + Σeᵢᵢ'`.
    pub fn total_servers(&self) -> u64 {
        self.new_by_mode.iter().sum::<u64>() + self.reused.iter().flatten().sum::<u64>()
    }

    /// Number of reused pre-existing servers `e = Σᵢᵢ' eᵢᵢ'`.
    pub fn reused_total(&self) -> u64 {
        self.reused.iter().flatten().sum()
    }

    /// Number of deleted pre-existing servers `Σkᵢ`.
    pub fn deleted_total(&self) -> u64 {
        self.deleted_by_mode.iter().sum()
    }

    /// Servers per *operated* mode (`by_mode[i'] = nᵢ' + Σᵢ eᵢᵢ'`), the
    /// input of Eq. 3.
    pub fn by_operated_mode(&self) -> Vec<u64> {
        let m = self.new_by_mode.len();
        let mut out = self.new_by_mode.clone();
        for row in &self.reused {
            for (ip, &e) in row.iter().enumerate() {
                out[ip] += e;
            }
        }
        debug_assert_eq!(out.len(), m);
        out
    }
}

/// A placement together with its routing, tallies, cost and power.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The replica set with assigned modes (post `ModePolicy` rewriting).
    pub placement: Placement,
    /// Request routing under the closest policy.
    pub assignment: Assignment,
    /// The `nᵢ` / `eᵢᵢ'` / `kᵢ` tallies.
    pub counts: SolutionCounts,
    /// Eq. 4 (reduces to Eq. 2 when `M = 1`).
    pub cost: f64,
    /// Eq. 3.
    pub power: f64,
}

impl Solution {
    /// Evaluates `placement` against `instance` honoring assigned modes.
    ///
    /// Fails if the placement is invalid (unknown mode), overloads a server
    /// or leaves a client unserved.
    pub fn evaluate(instance: &Instance, placement: &Placement) -> Result<Self, ModelError> {
        Self::evaluate_with_policy(instance, placement, ModePolicy::Assigned)
    }

    /// Evaluates `placement` under the given [`ModePolicy`].
    pub fn evaluate_with_policy(
        instance: &Instance,
        placement: &Placement,
        policy: ModePolicy,
    ) -> Result<Self, ModelError> {
        let tree = instance.tree();
        let modes = instance.modes();
        let mut placement = placement.clone();
        let assignment = Assignment::compute(tree, &placement);

        if policy == ModePolicy::LowestFeasible {
            // Routing is independent of modes, so re-moding after routing is
            // sound.
            for (node, _) in placement.clone().servers() {
                let load = assignment.load(node);
                let mode = modes.mode_for_load(load).ok_or(ModelError::Overloaded {
                    node,
                    load,
                    capacity: modes.max_capacity(),
                })?;
                placement.insert(node, mode);
            }
        }

        assignment.validate(tree, &placement, modes)?;

        let m = modes.count();
        let mut counts = SolutionCounts::zero(m);
        let pre = instance.pre_existing();
        for (node, mode) in placement.servers() {
            match pre.mode_of(node) {
                Some(orig) => counts.reused[orig][mode] += 1,
                None => counts.new_by_mode[mode] += 1,
            }
        }
        for (node, orig) in pre.iter() {
            if !placement.has_server(node) {
                counts.deleted_by_mode[orig] += 1;
            }
        }

        let cost =
            instance
                .cost()
                .total(&counts.new_by_mode, &counts.reused, &counts.deleted_by_mode);
        let power = instance.power().total(modes, &counts.by_operated_mode());
        Ok(Solution {
            placement,
            assignment,
            counts,
            cost,
            power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::modes::ModeSet;
    use crate::power::PowerModel;
    use crate::preexisting::PreExisting;
    use replica_tree::{NodeId, TreeBuilder};

    /// Figure 1 of the paper: root — A — {B, C}; clients B:3, C:4, r:2.
    /// B holds a pre-existing replica.
    fn fig1_instance() -> (Instance, [NodeId; 4]) {
        let mut bld = TreeBuilder::new();
        let r = bld.root();
        let a = bld.add_child(r);
        let b = bld.add_child(a);
        let c = bld.add_child(a);
        bld.add_client(b, 3);
        bld.add_client(c, 4);
        bld.add_client(r, 2);
        let tree = bld.build().unwrap();
        let inst = Instance::builder(tree)
            .capacity(10)
            .pre_existing(PreExisting::at_mode([b], 0))
            .cost(CostModel::simple(0.1, 0.01))
            .build()
            .unwrap();
        (inst, [r, a, b, c])
    }

    #[test]
    fn counts_cost_power_keep_b() {
        // Keep the pre-existing server at B, add one at the root.
        let (inst, [r, _a, b, _c]) = fig1_instance();
        let mut p = Placement::empty(inst.tree());
        p.insert(b, 0);
        p.insert(r, 0);
        let s = Solution::evaluate(&inst, &p).unwrap();
        assert_eq!(s.counts.total_servers(), 2);
        assert_eq!(s.counts.reused_total(), 1);
        assert_eq!(s.counts.deleted_total(), 0);
        // Eq. 2: R + (R−e)·create + (E−e)·delete = 2 + 0.1 + 0.
        assert!((s.cost - 2.1).abs() < 1e-12);
        assert_eq!(s.assignment.load(b), 3);
        assert_eq!(s.assignment.load(r), 6);
    }

    #[test]
    fn counts_cost_drop_b() {
        // Remove B, serve everything from C and the root (the "four requests
        // at the root" branch of the paper's Figure 1 discussion).
        let (inst, [r, _a, _b, c]) = fig1_instance();
        let mut p = Placement::empty(inst.tree());
        p.insert(c, 0);
        p.insert(r, 0);
        let s = Solution::evaluate(&inst, &p).unwrap();
        assert_eq!(s.counts.total_servers(), 2);
        assert_eq!(s.counts.reused_total(), 0);
        assert_eq!(s.counts.deleted_total(), 1);
        // 2 servers, 2 creations, 1 deletion: 2 + 0.2 + 0.01.
        assert!((s.cost - 2.21).abs() < 1e-12);
    }

    #[test]
    fn unserved_client_is_an_error() {
        let (inst, [_r, _a, b, _c]) = fig1_instance();
        let p = Placement::from_nodes(inst.tree(), [b], 0);
        assert!(matches!(
            Solution::evaluate(&inst, &p),
            Err(ModelError::Unserved(_))
        ));
    }

    fn two_mode_instance() -> (Instance, [NodeId; 4]) {
        // Figure 2 of the paper: modes {7, 10}, P = 10 + W².
        let mut bld = TreeBuilder::new();
        let r = bld.root();
        let a = bld.add_child(r);
        let b = bld.add_child(a);
        let c = bld.add_child(a);
        bld.add_client(b, 7);
        bld.add_client(c, 3);
        bld.add_client(r, 4);
        let tree = bld.build().unwrap();
        let inst = Instance::builder(tree)
            .modes(ModeSet::new(vec![7, 10]).unwrap())
            .power(PowerModel::new(10.0, 2.0))
            .build()
            .unwrap();
        (inst, [r, a, b, c])
    }

    #[test]
    fn figure2_power_tradeoff() {
        let (inst, [r, a, b, c]) = two_mode_instance();

        // Option 1: server at A in W₂ (absorbs 10), root in W₁ (4 requests).
        let mut p1 = Placement::empty(inst.tree());
        p1.insert(a, 1);
        p1.insert(r, 0);
        let s1 = Solution::evaluate(&inst, &p1).unwrap();
        assert!((s1.power - (110.0 + 59.0)).abs() < 1e-9);

        // Option 2: B and C in W₁ (paper: worse than one W₂ server at A).
        let mut p2 = Placement::empty(inst.tree());
        p2.insert(b, 0);
        p2.insert(c, 0);
        p2.insert(r, 0);
        let s2 = Solution::evaluate(&inst, &p2).unwrap();
        assert!(s2.power > s1.power);

        // Option 3: server at C in W₁ lets 3 requests through to the root.
        let mut p3 = Placement::empty(inst.tree());
        p3.insert(c, 0);
        p3.insert(r, 1); // root load = 7 + 4 = 11 > 10? No: B's 7 pass A… 7+3 absorbed? —
                         // B:7 flows up through A (no server), +4 at root = 11 with C absorbed 3.
        assert!(
            Solution::evaluate(&inst, &p3).is_err(),
            "root overloads at 11 > 10"
        );
    }

    #[test]
    fn lowest_feasible_remodes() {
        let (inst, [r, a, _b, _c]) = two_mode_instance();
        // Assign W₂ everywhere; LowestFeasible should demote the root
        // (load 4 ≤ 7) to W₁ while keeping A (load 10) at W₂.
        let mut p = Placement::empty(inst.tree());
        p.insert(a, 1);
        p.insert(r, 1);
        let s = Solution::evaluate_with_policy(&inst, &p, ModePolicy::LowestFeasible).unwrap();
        assert_eq!(s.placement.mode_of(r), Some(0));
        assert_eq!(s.placement.mode_of(a), Some(1));
        let by_mode = s.counts.by_operated_mode();
        assert_eq!(by_mode, vec![1, 1]);
    }

    #[test]
    fn mode_change_tallies() {
        // Pre-existing at mode 1, reused at mode 0 → e₁₀ = 1 (a downgrade).
        let (inst0, [r, a, _b, _c]) = two_mode_instance();
        let mut inst = inst0;
        inst.set_pre_existing(PreExisting::at_mode([r], 1)).unwrap();
        let mut p = Placement::empty(inst.tree());
        p.insert(a, 1);
        p.insert(r, 0);
        let s = Solution::evaluate(&inst, &p).unwrap();
        assert_eq!(s.counts.reused[1][0], 1);
        assert_eq!(s.counts.new_by_mode, vec![0, 1]);
        assert_eq!(s.counts.deleted_total(), 0);
        assert_eq!(s.counts.by_operated_mode(), vec![1, 1]);
    }
}
