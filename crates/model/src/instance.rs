//! Complete problem instances.
//!
//! An [`Instance`] bundles a distribution tree with the mode set, the
//! pre-existing server set, the cost model and the power model — everything
//! §2 of the paper introduces. All optimization algorithms in `replica-core`
//! take an `&Instance`; the dynamic simulation in `replica-sim` evolves one
//! over time.

use crate::cost::CostModel;
use crate::error::ModelError;
use crate::modes::ModeSet;
use crate::power::PowerModel;
use crate::preexisting::PreExisting;
use replica_tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// A full problem statement. Construct with [`Instance::builder`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Instance {
    tree: Tree,
    modes: ModeSet,
    pre_existing: PreExisting,
    cost: CostModel,
    power: PowerModel,
}

impl Instance {
    /// Starts a builder around `tree`.
    pub fn builder(tree: Tree) -> InstanceBuilder {
        InstanceBuilder {
            tree,
            modes: None,
            pre_existing: PreExisting::none(),
            cost: None,
            power: PowerModel::new(0.0, 2.0),
        }
    }

    /// Shorthand for the classical single-mode `MinCost` setting:
    /// capacity `W`, scalar `create`/`delete`, pre-existing servers at the
    /// (only) mode 0.
    pub fn min_cost<I: IntoIterator<Item = NodeId>>(
        tree: Tree,
        capacity: u64,
        pre_existing: I,
        create: f64,
        delete: f64,
    ) -> Result<Self, ModelError> {
        Instance::builder(tree)
            .modes(ModeSet::single(capacity)?)
            .pre_existing(PreExisting::at_mode(pre_existing, 0))
            .cost(CostModel::simple(create, delete))
            .build()
    }

    /// The distribution tree.
    #[inline]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Mutable access to the tree — only request volumes can change
    /// (topology is frozen by `replica-tree`), which is what the dynamic
    /// update strategies need.
    #[inline]
    pub fn tree_mut(&mut self) -> &mut Tree {
        &mut self.tree
    }

    /// The mode set.
    #[inline]
    pub fn modes(&self) -> &ModeSet {
        &self.modes
    }

    /// The pre-existing server set `E`.
    #[inline]
    pub fn pre_existing(&self) -> &PreExisting {
        &self.pre_existing
    }

    /// Replaces the pre-existing set (used by the dynamic simulation, where
    /// step `t`'s solution becomes step `t+1`'s pre-existing servers).
    pub fn set_pre_existing(&mut self, pre: PreExisting) -> Result<(), ModelError> {
        pre.validate(&self.tree, &self.modes)?;
        self.pre_existing = pre;
        Ok(())
    }

    /// The cost model.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The power model.
    #[inline]
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// Number of modes `M`.
    #[inline]
    pub fn mode_count(&self) -> usize {
        self.modes.count()
    }

    /// Highest capacity `W_M` (= the `W` of single-mode problems).
    #[inline]
    pub fn max_capacity(&self) -> u64 {
        self.modes.max_capacity()
    }

    /// Whether *any* feasible placement exists.
    ///
    /// Under the closest policy the requests of the clients attached to one
    /// node are inseparable: whichever server handles one handles all.
    /// Hence the instance is feasible iff `client(j) ≤ W_M` for every node
    /// `j` — in which case placing a replica everywhere is feasible.
    pub fn feasible(&self) -> bool {
        self.tree
            .internal_nodes()
            .all(|j| self.tree.client_load(j) <= self.modes.max_capacity())
    }
}

/// Builder for [`Instance`]; see [`Instance::builder`].
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    tree: Tree,
    modes: Option<ModeSet>,
    pre_existing: PreExisting,
    cost: Option<CostModel>,
    power: PowerModel,
}

impl InstanceBuilder {
    /// Sets the mode set.
    pub fn modes(mut self, modes: ModeSet) -> Self {
        self.modes = Some(modes);
        self
    }

    /// Single-mode shorthand: capacity `W`.
    pub fn capacity(mut self, w: u64) -> Self {
        self.modes = Some(ModeSet::single(w).expect("capacity must be positive"));
        self
    }

    /// Sets the pre-existing server set.
    pub fn pre_existing(mut self, pre: PreExisting) -> Self {
        self.pre_existing = pre;
        self
    }

    /// Sets the cost model (default: all reconfiguration free, cost = `R`).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Sets the power model (default: `P_static = 0`, `α = 2`).
    pub fn power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Validates all parts and assembles the instance.
    pub fn build(self) -> Result<Instance, ModelError> {
        let modes = self
            .modes
            .ok_or_else(|| ModelError::InvalidModes("mode set (or capacity) required".into()))?;
        let cost = self.cost.unwrap_or_else(|| CostModel::free(modes.count()));
        cost.validate(&modes)?;
        self.power.validate()?;
        self.pre_existing.validate(&self.tree, &modes)?;
        Ok(Instance {
            tree: self.tree,
            modes,
            pre_existing: self.pre_existing,
            cost,
            power: self.power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replica_tree::TreeBuilder;

    fn tree(client_loads: &[u64]) -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.root();
        for &load in client_loads {
            let n = b.add_child(r);
            if load > 0 {
                b.add_client(n, load);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_defaults() {
        let inst = Instance::builder(tree(&[3, 4]))
            .capacity(10)
            .build()
            .unwrap();
        assert_eq!(inst.mode_count(), 1);
        assert_eq!(inst.max_capacity(), 10);
        assert!(inst.pre_existing().is_empty());
        assert_eq!(inst.cost().create[0], 0.0);
        assert!(inst.feasible());
    }

    #[test]
    fn requires_modes() {
        let err = Instance::builder(tree(&[1])).build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidModes(_)));
    }

    #[test]
    fn min_cost_shorthand() {
        let t = tree(&[3, 4]);
        let pre = vec![NodeId::from_index(1)];
        let inst = Instance::min_cost(t, 10, pre, 0.1, 0.01).unwrap();
        assert_eq!(inst.pre_existing().count(), 1);
        assert_eq!(inst.pre_existing().mode_of(NodeId::from_index(1)), Some(0));
        assert!((inst.cost().create[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn feasibility_is_client_bundle_bound() {
        // One node with an 11-request client: infeasible at W = 10.
        let inst = Instance::builder(tree(&[11])).capacity(10).build().unwrap();
        assert!(!inst.feasible());
        let inst = Instance::builder(tree(&[10, 10, 10]))
            .capacity(10)
            .build()
            .unwrap();
        assert!(inst.feasible());
    }

    #[test]
    fn cross_validation_on_build() {
        let bad_cost = Instance::builder(tree(&[1]))
            .modes(ModeSet::new(vec![5, 10]).unwrap())
            .cost(CostModel::simple(0.1, 0.1))
            .build();
        assert!(bad_cost.is_err());

        let bad_pre = Instance::builder(tree(&[1]))
            .capacity(5)
            .pre_existing(PreExisting::at_mode([NodeId::from_index(7)], 0))
            .build();
        assert!(bad_pre.is_err());

        let bad_power = Instance::builder(tree(&[1]))
            .capacity(5)
            .power(PowerModel::new(-2.0, 2.0))
            .build();
        assert!(bad_power.is_err());
    }

    #[test]
    fn set_pre_existing_validates() {
        let mut inst = Instance::builder(tree(&[2, 3]))
            .capacity(10)
            .build()
            .unwrap();
        assert!(inst
            .set_pre_existing(PreExisting::at_mode([NodeId::from_index(1)], 0))
            .is_ok());
        assert_eq!(inst.pre_existing().count(), 1);
        assert!(inst
            .set_pre_existing(PreExisting::at_mode([NodeId::from_index(9)], 0))
            .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let inst =
            Instance::min_cost(tree(&[3, 4]), 10, vec![NodeId::from_index(2)], 0.1, 0.01).unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.max_capacity(), 10);
        assert_eq!(back.pre_existing().count(), 1);
        assert_eq!(back.tree().total_requests(), inst.tree().total_requests());
    }
}
