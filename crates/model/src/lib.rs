//! # `replica-model` — problem semantics for replica placement
//!
//! This crate encodes §2 ("Framework") of Benoit, Renaud-Goud & Robert,
//! *Power-aware replica placement and update strategies in tree networks*
//! (IPDPS 2011): everything needed to *state* and *evaluate* a placement,
//! independent of any particular optimization algorithm.
//!
//! * [`modes`] — server operation modes `W₁ < … < W_M` (multi-speed
//!   processors; `M = 1` recovers the classical single-capacity model).
//! * [`placement`] — a replica set `R ⊆ N` with a mode assigned to each
//!   server.
//! * [`assignment`] — the **closest** request-service policy: every client is
//!   served by the first ancestor holding a replica; computes per-server
//!   loads, per-node up-flows and feasibility (Eq. 1).
//! * [`cost`] — the reconfiguration cost functions: Eq. 2 (scalar
//!   create/delete) as the `M = 1` special case of Eq. 4 (per-mode create,
//!   delete and mode-change matrices).
//! * [`power`] — Eq. 3: `P(R) = R·P_static + Σ_j W_{mode(j)}^α`.
//! * [`preexisting`] — the set `E` of servers already present, with their
//!   original modes.
//! * [`instance`] — a full problem instance bundling all of the above.
//! * [`solution`] — evaluated placements: server counts `nᵢ`, `eᵢᵢ'`, `kᵢ`,
//!   total cost and power.
//!
//! Where this crate sits in the workspace: `docs/ARCHITECTURE.md` at the
//! repository root (crate map, paper-notation table, data-flow diagrams).
//!
//! ## Example
//!
//! ```
//! use replica_model::prelude::*;
//! use replica_tree::TreeBuilder;
//!
//! // Figure 2 of the paper: modes {7, 10}, power 10 + W².
//! let mut b = TreeBuilder::new();
//! let root = b.root();
//! let a = b.add_child(root);
//! let bb = b.add_child(a);
//! let c = b.add_child(a);
//! b.add_client(bb, 3);
//! b.add_client(c, 7);
//! b.add_client(root, 4);
//! let tree = b.build().unwrap();
//!
//! let instance = Instance::builder(tree)
//!     .modes(ModeSet::new(vec![7, 10]).unwrap())
//!     .power(PowerModel::new(10.0, 2.0))
//!     .build()
//!     .unwrap();
//!
//! // The paper's second local option: a server at C in mode W₁ lets three
//! // requests traverse A; the root (load 3 + 4 = 7) also fits mode W₁.
//! let mut placement = Placement::empty(instance.tree());
//! placement.insert(c, 0);
//! placement.insert(root, 0);
//! let solution = Solution::evaluate(&instance, &placement).unwrap();
//! assert_eq!(solution.counts.total_servers(), 2);
//! // Both run at W₁ = 7: power = 2·10 + 2·7².
//! assert!((solution.power - (20.0 + 2.0 * 49.0)).abs() < 1e-9);
//! ```

pub mod assignment;
pub mod cost;
pub mod error;
pub mod instance;
pub mod modes;
pub mod placement;
pub mod power;
pub mod preexisting;
pub mod reference;
pub mod solution;

pub use assignment::{compute_validated, Assignment};
pub use cost::{le_tolerant, CostModel, COST_EPSILON};
pub use error::ModelError;
pub use instance::{Instance, InstanceBuilder};
pub use modes::{ModeIdx, ModeSet};
pub use placement::Placement;
pub use power::PowerModel;
pub use preexisting::PreExisting;
pub use solution::{ModePolicy, Solution, SolutionCounts};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::assignment::Assignment;
    pub use crate::cost::CostModel;
    pub use crate::error::ModelError;
    pub use crate::instance::Instance;
    pub use crate::modes::{ModeIdx, ModeSet};
    pub use crate::placement::Placement;
    pub use crate::power::PowerModel;
    pub use crate::preexisting::PreExisting;
    pub use crate::solution::{ModePolicy, Solution, SolutionCounts};
}
