//! Replica placements: the decision variable of every problem in the paper.
//!
//! A [`Placement`] maps a subset `R ⊆ N` of internal nodes to operation
//! modes. For single-mode instances every server uses mode 0. The type is
//! sized to a specific tree (dense `Vec<Option<ModeIdx>>` indexed by node),
//! which keeps the hot feasibility loops branch-light and allocation-free.

use crate::modes::ModeIdx;
use replica_tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// A set of servers with assigned modes, relative to one tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    modes: Vec<Option<u8>>,
    servers: u32,
}

impl Placement {
    /// Largest representable mode index (placements store modes as `u8`).
    pub const MAX_MODE: usize = u8::MAX as usize;

    /// An empty placement for `tree`.
    pub fn empty(tree: &Tree) -> Self {
        Placement::with_slots(tree.internal_count())
    }

    /// An empty placement with `internal_count` node slots.
    ///
    /// For callers holding a flat layout (`replica_tree::FlatTree`) instead
    /// of the tree itself; equivalent to [`Placement::empty`] on any tree
    /// with that many internal nodes.
    pub fn with_slots(internal_count: usize) -> Self {
        Placement {
            modes: vec![None; internal_count],
            servers: 0,
        }
    }

    /// A placement with a server at every listed node, all in `mode`.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(
        tree: &Tree,
        nodes: I,
        mode: ModeIdx,
    ) -> Self {
        let mut p = Placement::empty(tree);
        for n in nodes {
            p.insert(n, mode);
        }
        p
    }

    /// Adds (or re-modes) a server at `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range for the tree this placement was
    /// created for, or if `mode > Placement::MAX_MODE`.
    pub fn insert(&mut self, node: NodeId, mode: ModeIdx) {
        let slot = &mut self.modes[node.index()];
        let mode = u8::try_from(mode).expect("mode index exceeds placement storage");
        if slot.is_none() {
            self.servers += 1;
        }
        *slot = Some(mode);
    }

    /// Removes the server at `node`; returns its mode if one was present.
    pub fn remove(&mut self, node: NodeId) -> Option<ModeIdx> {
        let slot = &mut self.modes[node.index()];
        let old = slot.take();
        if old.is_some() {
            self.servers -= 1;
        }
        old.map(ModeIdx::from)
    }

    /// Mode of the server at `node`, or `None` if no server there.
    #[inline]
    pub fn mode_of(&self, node: NodeId) -> Option<ModeIdx> {
        self.modes[node.index()].map(ModeIdx::from)
    }

    /// True if `node` holds a replica.
    #[inline]
    pub fn has_server(&self, node: NodeId) -> bool {
        self.modes[node.index()].is_some()
    }

    /// Number of servers `R = |R|`.
    #[inline]
    pub fn server_count(&self) -> usize {
        self.servers as usize
    }

    /// True if no node holds a replica.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.servers == 0
    }

    /// Number of node slots (the tree's internal-node count).
    #[inline]
    pub fn slots(&self) -> usize {
        self.modes.len()
    }

    /// Iterator over `(node, mode)` pairs in node order.
    pub fn servers(&self) -> impl Iterator<Item = (NodeId, ModeIdx)> + '_ {
        self.modes
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|mode| (NodeId::from_index(i), ModeIdx::from(mode))))
    }

    /// The server nodes as a sorted vector (handy for reporting).
    pub fn server_nodes(&self) -> Vec<NodeId> {
        self.servers().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replica_tree::TreeBuilder;

    fn tree3() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.root();
        let a = b.add_child(r);
        b.add_child(a);
        b.build().unwrap()
    }

    #[test]
    fn insert_remove_cycle() {
        let t = tree3();
        let n1 = NodeId::from_index(1);
        let mut p = Placement::empty(&t);
        assert!(p.is_empty());
        p.insert(n1, 1);
        assert_eq!(p.server_count(), 1);
        assert_eq!(p.mode_of(n1), Some(1));
        assert!(p.has_server(n1));

        // Re-inserting re-modes without double-counting.
        p.insert(n1, 0);
        assert_eq!(p.server_count(), 1);
        assert_eq!(p.mode_of(n1), Some(0));

        assert_eq!(p.remove(n1), Some(0));
        assert_eq!(p.remove(n1), None);
        assert!(p.is_empty());
    }

    #[test]
    fn from_nodes_and_iteration() {
        let t = tree3();
        let nodes = [NodeId::from_index(0), NodeId::from_index(2)];
        let p = Placement::from_nodes(&t, nodes, 0);
        assert_eq!(p.server_count(), 2);
        let collected: Vec<_> = p.servers().collect();
        assert_eq!(collected, vec![(nodes[0], 0), (nodes[1], 0)]);
        assert_eq!(p.server_nodes(), nodes.to_vec());
    }

    #[test]
    fn serde_round_trip() {
        let t = tree3();
        let p = Placement::from_nodes(&t, [NodeId::from_index(1)], 2);
        let json = serde_json::to_string(&p).unwrap();
        let back: Placement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_panics() {
        let t = tree3();
        let mut p = Placement::empty(&t);
        p.insert(NodeId::from_index(99), 0);
    }
}
