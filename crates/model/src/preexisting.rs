//! The pre-existing server set `E ⊆ N` (§2.1 of the paper).
//!
//! Each pre-existing server carries its *original* operation mode, which the
//! mode-change costs `changedᵢᵢ'` and deletion costs `deleteᵢ` of Eq. 4 refer
//! to. For single-mode problems every entry uses mode 0.
//!
//! The paper's Experiment 3 does not state the original modes of its five
//! pre-existing servers; this type makes the choice explicit and
//! configurable (our experiments default to the highest mode, matching the
//! single-mode model where a pre-existing replica is a full-capacity server
//! — see DESIGN.md).

use crate::error::ModelError;
use crate::modes::{ModeIdx, ModeSet};
use replica_tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pre-existing servers with their original modes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreExisting {
    entries: BTreeMap<NodeId, ModeIdx>,
}

impl PreExisting {
    /// The empty set (the `NoPre` problem variants).
    pub fn none() -> Self {
        PreExisting::default()
    }

    /// All listed nodes pre-exist at `mode`.
    pub fn at_mode<I: IntoIterator<Item = NodeId>>(nodes: I, mode: ModeIdx) -> Self {
        PreExisting {
            entries: nodes.into_iter().map(|n| (n, mode)).collect(),
        }
    }

    /// Explicit per-node original modes.
    pub fn from_map(entries: BTreeMap<NodeId, ModeIdx>) -> Self {
        PreExisting { entries }
    }

    /// Number of pre-existing servers `E = |E|`.
    #[inline]
    pub fn count(&self) -> usize {
        self.entries.len()
    }

    /// True if no server pre-exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Original mode of `node` if it pre-exists.
    #[inline]
    pub fn mode_of(&self, node: NodeId) -> Option<ModeIdx> {
        self.entries.get(&node).copied()
    }

    /// True if `node` holds a pre-existing replica.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.contains_key(&node)
    }

    /// Iterator over `(node, original mode)` in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ModeIdx)> + '_ {
        self.entries.iter().map(|(&n, &m)| (n, m))
    }

    /// The pre-existing nodes in order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.entries.keys().copied().collect()
    }

    /// Per-original-mode tally `Eᵢ` (length = mode count).
    pub fn count_by_mode(&self, modes: usize) -> Vec<u64> {
        let mut by_mode = vec![0u64; modes];
        for &m in self.entries.values() {
            by_mode[m] += 1;
        }
        by_mode
    }

    /// Checks that every entry names a real node and a real mode.
    pub fn validate(&self, tree: &Tree, modes: &ModeSet) -> Result<(), ModelError> {
        for (&node, &mode) in &self.entries {
            if node.index() >= tree.internal_count() {
                return Err(ModelError::InvalidPreExisting(format!(
                    "node {node} outside the tree"
                )));
            }
            if mode >= modes.count() {
                return Err(ModelError::InvalidPreExisting(format!(
                    "node {node} has unknown original mode index {mode}"
                )));
            }
        }
        Ok(())
    }
}

impl FromIterator<(NodeId, ModeIdx)> for PreExisting {
    fn from_iter<I: IntoIterator<Item = (NodeId, ModeIdx)>>(iter: I) -> Self {
        PreExisting {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replica_tree::TreeBuilder;

    fn tree() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.root();
        let a = b.add_child(r);
        b.add_child(a);
        b.build().unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let pre = PreExisting::at_mode([n1, n2], 1);
        assert_eq!(pre.count(), 2);
        assert!(pre.contains(n1));
        assert_eq!(pre.mode_of(n2), Some(1));
        assert_eq!(pre.mode_of(NodeId::from_index(0)), None);
        assert_eq!(pre.nodes(), vec![n1, n2]);
        assert_eq!(pre.count_by_mode(2), vec![0, 2]);
        assert!(PreExisting::none().is_empty());
    }

    #[test]
    fn validation() {
        let t = tree();
        let modes = ModeSet::new(vec![5, 10]).unwrap();
        let ok = PreExisting::at_mode([NodeId::from_index(1)], 1);
        assert!(ok.validate(&t, &modes).is_ok());
        let bad_node = PreExisting::at_mode([NodeId::from_index(9)], 0);
        assert!(bad_node.validate(&t, &modes).is_err());
        let bad_mode = PreExisting::at_mode([NodeId::from_index(1)], 7);
        assert!(bad_mode.validate(&t, &modes).is_err());
    }

    #[test]
    fn from_iterator_and_serde() {
        let pre: PreExisting = [(NodeId::from_index(0), 0), (NodeId::from_index(2), 1)]
            .into_iter()
            .collect();
        let json = serde_json::to_string(&pre).unwrap();
        let back: PreExisting = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pre);
    }
}
