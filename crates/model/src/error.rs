//! Error types shared across the model crate.

use replica_tree::{ClientId, NodeId};
use std::fmt;

/// Everything that can go wrong when stating or evaluating a problem.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// Mode capacities must be non-empty and strictly increasing.
    InvalidModes(String),
    /// Cost-model dimensions must match the mode count.
    InvalidCost(String),
    /// Power-model parameters out of range (e.g. `α` outside `[1, 10]`).
    InvalidPower(String),
    /// A pre-existing entry points at an unknown node or mode.
    InvalidPreExisting(String),
    /// A placement entry points at an unknown node or mode.
    InvalidPlacement(String),
    /// A server exceeds the capacity of its assigned mode (violates Eq. 1).
    Overloaded {
        /// The overloaded server.
        node: NodeId,
        /// Requests reaching it.
        load: u64,
        /// Capacity of its assigned mode.
        capacity: u64,
    },
    /// A client has no server on its path to the root.
    Unserved(ClientId),
    /// The instance admits no feasible placement at all (some bundle of
    /// requests that cannot be split exceeds the largest capacity).
    Infeasible(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidModes(msg) => write!(f, "invalid mode set: {msg}"),
            ModelError::InvalidCost(msg) => write!(f, "invalid cost model: {msg}"),
            ModelError::InvalidPower(msg) => write!(f, "invalid power model: {msg}"),
            ModelError::InvalidPreExisting(msg) => write!(f, "invalid pre-existing set: {msg}"),
            ModelError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            ModelError::Overloaded {
                node,
                load,
                capacity,
            } => write!(
                f,
                "server {node} receives {load} requests, over its mode capacity {capacity}"
            ),
            ModelError::Unserved(c) => write!(f, "client {c} has no ancestor server"),
            ModelError::Infeasible(msg) => write!(f, "instance is infeasible: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ModelError::Overloaded {
            node: NodeId::from_index(3),
            load: 12,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("n3") && s.contains("12") && s.contains("10"));
        assert!(ModelError::Unserved(ClientId::from_index(1))
            .to_string()
            .contains("c1"));
    }
}
