//! Server operation modes (§2.2 of the paper).
//!
//! A server runs in one of `M` modes with capacities `W₁ < W₂ < … < W_M`;
//! the highest capacity `W_M` doubles as the classical capacity `W` of the
//! single-mode problems. Mode indices are 0-based here (`ModeIdx = 0` is the
//! paper's mode 1).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// 0-based index into a [`ModeSet`] (the paper's mode `i` is index `i − 1`).
pub type ModeIdx = usize;

/// A strictly increasing, non-empty list of mode capacities.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "Vec<u64>", into = "Vec<u64>")]
pub struct ModeSet {
    caps: Vec<u64>,
}

impl ModeSet {
    /// Builds a mode set; capacities must be positive and strictly
    /// increasing.
    pub fn new(caps: Vec<u64>) -> Result<Self, ModelError> {
        if caps.is_empty() {
            return Err(ModelError::InvalidModes("no modes given".into()));
        }
        if caps[0] == 0 {
            return Err(ModelError::InvalidModes(
                "capacity 0 is not operable".into(),
            ));
        }
        if !caps.windows(2).all(|w| w[0] < w[1]) {
            return Err(ModelError::InvalidModes(format!(
                "capacities must be strictly increasing, got {caps:?}"
            )));
        }
        Ok(ModeSet { caps })
    }

    /// Single-mode set: the classical model with one capacity `W`.
    pub fn single(w: u64) -> Result<Self, ModelError> {
        Self::new(vec![w])
    }

    /// Number of modes `M`.
    #[inline]
    pub fn count(&self) -> usize {
        self.caps.len()
    }

    /// Capacity `Wᵢ₊₁` of mode index `i`.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    #[inline]
    pub fn capacity(&self, mode: ModeIdx) -> u64 {
        self.caps[mode]
    }

    /// The largest capacity `W_M` (the `W` of the single-mode problems).
    #[inline]
    pub fn max_capacity(&self) -> u64 {
        *self.caps.last().expect("mode sets are non-empty")
    }

    /// All capacities in increasing order.
    #[inline]
    pub fn capacities(&self) -> &[u64] {
        &self.caps
    }

    /// Iterator over mode indices `0..M`.
    pub fn indices(&self) -> std::ops::Range<ModeIdx> {
        0..self.caps.len()
    }

    /// The smallest mode that can carry `load` requests, i.e. the paper's
    /// load-determined mode (`W_{i−1} < load ≤ W_i`); `None` if the load
    /// exceeds `W_M`.
    ///
    /// A load of zero maps to the lowest mode (an idle but powered server).
    pub fn mode_for_load(&self, load: u64) -> Option<ModeIdx> {
        // Mode counts are tiny (2–3 in practice): linear scan beats
        // binary search here.
        self.caps.iter().position(|&c| load <= c)
    }

    /// True if a server in `mode` can carry `load`.
    #[inline]
    pub fn fits(&self, mode: ModeIdx, load: u64) -> bool {
        load <= self.caps[mode]
    }
}

impl TryFrom<Vec<u64>> for ModeSet {
    type Error = ModelError;
    fn try_from(caps: Vec<u64>) -> Result<Self, Self::Error> {
        ModeSet::new(caps)
    }
}

impl From<ModeSet> for Vec<u64> {
    fn from(m: ModeSet) -> Vec<u64> {
        m.caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert!(ModeSet::new(vec![]).is_err());
        assert!(ModeSet::new(vec![0, 5]).is_err());
        assert!(ModeSet::new(vec![5, 5]).is_err());
        assert!(ModeSet::new(vec![7, 5]).is_err());
    }

    #[test]
    fn accessors() {
        let m = ModeSet::new(vec![5, 10]).unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.capacity(0), 5);
        assert_eq!(m.capacity(1), 10);
        assert_eq!(m.max_capacity(), 10);
        assert_eq!(m.indices().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(ModeSet::single(10).unwrap().count(), 1);
    }

    #[test]
    fn load_determined_mode() {
        let m = ModeSet::new(vec![5, 10]).unwrap();
        assert_eq!(m.mode_for_load(0), Some(0));
        assert_eq!(m.mode_for_load(5), Some(0));
        assert_eq!(m.mode_for_load(6), Some(1));
        assert_eq!(m.mode_for_load(10), Some(1));
        assert_eq!(m.mode_for_load(11), None);
        assert!(m.fits(0, 5));
        assert!(!m.fits(0, 6));
        assert!(m.fits(1, 10));
    }

    #[test]
    fn serde_round_trip_validates() {
        let m = ModeSet::new(vec![5, 10]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(json, "[5,10]");
        let back: ModeSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let bad: Result<ModeSet, _> = serde_json::from_str("[10,5]");
        assert!(bad.is_err());
    }
}
