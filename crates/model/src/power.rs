//! The power-consumption model (Eq. 3 of the paper).
//!
//! A server operated at mode `Wᵢ` dissipates `P_static + Wᵢ^α` watts: a
//! static part paid by every powered server and a dynamic part that is a
//! strictly convex function of the speed, with `α ∈ [2, 3]` depending on the
//! hardware model. Total power is the sum over all servers:
//!
//! `P(R) = R · P_static + Σ_{j ∈ R} W_{mode(j)}^α`.

use crate::error::ModelError;
use crate::modes::{ModeIdx, ModeSet};
use serde::{Deserialize, Serialize};

/// Parameters of Eq. 3.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// `P_static`: consumption of a powered-on server, independent of speed.
    pub static_power: f64,
    /// The exponent `α` of the dynamic part (rational, typically in `[2,3]`).
    pub alpha: f64,
}

impl PowerModel {
    /// Creates a model; parameters are validated by [`PowerModel::validate`]
    /// when the instance is assembled.
    pub fn new(static_power: f64, alpha: f64) -> Self {
        PowerModel {
            static_power,
            alpha,
        }
    }

    /// The paper's Experiment 3 model: `Pᵢ = W₁³/10 + Wᵢ³`, i.e.
    /// `P_static = W₁³/10` and `α = 3`.
    pub fn paper_experiment3(modes: &ModeSet) -> Self {
        let w1 = modes.capacity(0) as f64;
        PowerModel {
            static_power: w1.powi(3) / 10.0,
            alpha: 3.0,
        }
    }

    /// Zero-static-power model (the NP-completeness reduction of §4.2 uses
    /// this).
    pub fn dynamic_only(alpha: f64) -> Self {
        PowerModel {
            static_power: 0.0,
            alpha,
        }
    }

    /// Sanity checks: non-negative finite static power, `α ∈ [1, 10]`.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.static_power.is_finite() || self.static_power < 0.0 {
            return Err(ModelError::InvalidPower(format!(
                "static power {} out of range",
                self.static_power
            )));
        }
        if !self.alpha.is_finite() || !(1.0..=10.0).contains(&self.alpha) {
            return Err(ModelError::InvalidPower(format!(
                "alpha {} out of range",
                self.alpha
            )));
        }
        Ok(())
    }

    /// Power drawn by one server operated at `mode`: `P_static + Wᵢ^α`.
    #[inline]
    pub fn server_power(&self, modes: &ModeSet, mode: ModeIdx) -> f64 {
        self.static_power + self.dynamic_power(modes, mode)
    }

    /// Dynamic part only: `Wᵢ^α`.
    #[inline]
    pub fn dynamic_power(&self, modes: &ModeSet, mode: ModeIdx) -> f64 {
        (modes.capacity(mode) as f64).powf(self.alpha)
    }

    /// Eq. 3 from aggregate per-mode server counts (`by_mode[i]` servers run
    /// at mode `i`).
    pub fn total(&self, modes: &ModeSet, by_mode: &[u64]) -> f64 {
        debug_assert_eq!(by_mode.len(), modes.count());
        let servers: u64 = by_mode.iter().sum();
        let dynamic: f64 = by_mode
            .iter()
            .enumerate()
            .map(|(i, &k)| k as f64 * self.dynamic_power(modes, i))
            .sum();
        servers as f64 * self.static_power + dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_power_values() {
        // Figure 2: modes {7, 10}, P = 10 + W², α = 2.
        let modes = ModeSet::new(vec![7, 10]).unwrap();
        let p = PowerModel::new(10.0, 2.0);
        assert!((p.server_power(&modes, 0) - 59.0).abs() < 1e-12);
        assert!((p.server_power(&modes, 1) - 110.0).abs() < 1e-12);
        // Paper's inequality: 20 + 2·7² > 10 + 10².
        assert!(2.0 * p.server_power(&modes, 0) > p.server_power(&modes, 1));
    }

    #[test]
    fn experiment3_model() {
        // Pᵢ = W₁³/10 + Wᵢ³ with W = {5, 10}.
        let modes = ModeSet::new(vec![5, 10]).unwrap();
        let p = PowerModel::paper_experiment3(&modes);
        assert!((p.static_power - 12.5).abs() < 1e-12);
        assert!((p.server_power(&modes, 0) - 137.5).abs() < 1e-12);
        assert!((p.server_power(&modes, 1) - 1012.5).abs() < 1e-12);
    }

    #[test]
    fn total_aggregates() {
        let modes = ModeSet::new(vec![5, 10]).unwrap();
        let p = PowerModel::new(2.0, 3.0);
        // 2 servers at W₁, 1 at W₂: 3·2 + 2·125 + 1000.
        assert!((p.total(&modes, &[2, 1]) - (6.0 + 250.0 + 1000.0)).abs() < 1e-9);
        assert_eq!(p.total(&modes, &[0, 0]), 0.0);
    }

    #[test]
    fn fractional_alpha() {
        let modes = ModeSet::new(vec![4]).unwrap();
        let p = PowerModel::dynamic_only(2.5);
        assert!((p.server_power(&modes, 0) - 32.0).abs() < 1e-9); // 4^2.5 = 32
    }

    #[test]
    fn validation() {
        assert!(PowerModel::new(0.0, 2.0).validate().is_ok());
        assert!(PowerModel::new(-1.0, 2.0).validate().is_err());
        assert!(PowerModel::new(1.0, 0.5).validate().is_err());
        assert!(PowerModel::new(1.0, f64::NAN).validate().is_err());
    }
}
