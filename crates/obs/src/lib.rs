//! # `replica-obs` — out-of-band observability for the workspace
//!
//! A small, dependency-free telemetry layer: hierarchical spans,
//! monotonic counters and wall-clock histograms, emitted as [`Event`]s
//! through a pluggable [`Sink`] (no-op, in-memory for tests, buffered
//! JSONL file). The engine's fleet runner, the `fleetd` shard workers
//! and the experiments harness all trace through the one [`Obs`]
//! handle defined here.
//!
//! **The out-of-band invariant.** Telemetry never feeds back into
//! computation: every deterministic artifact (FNV cell checksums,
//! `*-det` renderings, merged shard digests) is byte-identical with
//! tracing off, on, and at any [`Verbosity`]. The engine's proptest
//! suite pins this. Consequently everything here is advisory — wall
//! timestamps, durations and throughput are *measurements of* a run,
//! never *inputs to* one.
//!
//! **Cost when disabled.** [`Obs::noop()`] is a `None` behind a
//! pointer-sized handle: spans, counters and progress calls reduce to
//! an `Option` check. The committed `BENCH_obs.json` pins the no-op
//! overhead at ≈ 0.
//!
//! The distribution statistics ([`Stats`], [`P2Quantile`],
//! [`MetricAccumulator`]) live here too — they started inside the
//! engine's streaming aggregation and moved down so deterministic
//! aggregates and telemetry histograms share one implementation (the
//! engine re-exports them unchanged).

#![warn(missing_docs)]

pub mod analyze;
mod event;
mod hist;
pub mod reader;
mod sink;

pub use analyze::{
    Analysis, AttemptEvent, BatchSpan, HistogramLine, PhaseProfile, SchedAnalysis, ShardTimeline,
    SlotUtilization, SlowSolve, ThroughputPoint,
};
pub use event::{Event, SchedOp};
pub use hist::{MetricAccumulator, P2Quantile, Stats};
pub use reader::{ParseError, Trace, TraceLine};
pub use sink::{FanoutSink, JsonlSink, MemorySink, NoopSink, Sink};

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much detail an [`Obs`] handle emits. "Off" is not a level —
/// it is [`Obs::noop()`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Run/batch spans, progress events, histograms and counters.
    Progress,
    /// Everything above plus per-solve spans and DP phase sub-spans.
    Solve,
}

struct Shared {
    sink: Arc<dyn Sink>,
    verbosity: Verbosity,
    next_id: AtomicU64,
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

/// A cheaply clonable telemetry handle. Everything an instrumented
/// component needs: span creation, progress, counters, histograms.
///
/// The disabled handle ([`Obs::noop()`]) makes every operation an
/// `Option` check — instrumented code paths need no `if traced`
/// branches of their own.
#[derive(Clone)]
pub struct Obs {
    shared: Option<Arc<Shared>>,
}

impl Obs {
    /// The disabled handle: emits nothing, costs (almost) nothing.
    pub fn noop() -> Obs {
        Obs { shared: None }
    }

    /// A handle emitting to `sink` at the given verbosity.
    pub fn new(sink: Arc<dyn Sink>, verbosity: Verbosity) -> Obs {
        Obs {
            shared: Some(Arc::new(Shared {
                sink,
                verbosity,
                next_id: AtomicU64::new(1),
                counters: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Convenience: a handle tracing to a JSONL file at `path`.
    pub fn jsonl(path: &Path, verbosity: Verbosity) -> std::io::Result<Obs> {
        Ok(Obs::new(Arc::new(JsonlSink::create(path)?), verbosity))
    }

    /// Whether this handle emits anything at all.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Whether per-solve spans (and DP phase sub-spans) are emitted.
    pub fn solve_detail(&self) -> bool {
        self.shared
            .as_ref()
            .is_some_and(|s| s.verbosity >= Verbosity::Solve)
    }

    /// Opens a root span. Dropping the returned guard closes it with
    /// its measured wall-clock duration.
    pub fn span(&self, name: &'static str, label: impl Into<String>) -> Span {
        self.open_span(name, label.into(), None)
    }

    fn open_span(&self, name: &'static str, label: String, parent: Option<u64>) -> Span {
        let Some(shared) = &self.shared else {
            return Span::disabled();
        };
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        shared.sink.emit(&Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            label: label.clone(),
        });
        Span {
            inner: Some(SpanInner {
                obs: self.clone(),
                id,
                name,
                label,
                start: Instant::now(),
            }),
        }
    }

    /// Emits a progress event: `done` of `total` jobs after
    /// `elapsed_secs` of wall-clock time (throughput and ETA are
    /// derived; a zero-elapsed or zero-throughput snapshot reports 0).
    pub fn progress(&self, done: usize, total: usize, elapsed_secs: f64) {
        let Some(shared) = &self.shared else { return };
        let jobs_per_sec = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        let eta_secs = if jobs_per_sec > 0.0 {
            total.saturating_sub(done) as f64 / jobs_per_sec
        } else {
            0.0
        };
        shared.sink.emit(&Event::Progress {
            done,
            total,
            jobs_per_sec,
            eta_secs,
        });
    }

    /// Adds `delta` to the named monotonic counter. Counters accumulate
    /// silently until [`Obs::flush_counters`] emits them.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(shared) = &self.shared else { return };
        *shared
            .counters
            .lock()
            .expect("obs counters poisoned")
            .entry(name)
            .or_insert(0) += delta;
    }

    /// Emits one [`Event::Counter`] per accumulated counter (in name
    /// order) and resets them.
    pub fn flush_counters(&self) {
        let Some(shared) = &self.shared else { return };
        let counters = std::mem::take(&mut *shared.counters.lock().expect("obs counters poisoned"));
        for (name, value) in counters {
            shared.sink.emit(&Event::Counter {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Emits a pre-built event as-is (no verbosity gating). This is the
    /// raw seam the fleet coordinator uses for supervision events
    /// ([`Event::Sched`]) and trace provenance markers
    /// ([`Event::ShardSegment`]) — kinds that have no dedicated helper
    /// because they are not produced by instrumented solver code.
    pub fn emit(&self, event: Event) {
        if let Some(shared) = &self.shared {
            shared.sink.emit(&event);
        }
    }

    /// Emits a histogram snapshot under `name` (values in `unit`).
    pub fn histogram(&self, name: impl Into<String>, unit: &'static str, stats: Stats) {
        let Some(shared) = &self.shared else { return };
        shared.sink.emit(&Event::Histogram {
            name: name.into(),
            unit: unit.to_string(),
            stats,
        });
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(shared) = &self.shared {
            shared.sink.flush();
        }
    }
}

struct SpanInner {
    obs: Obs,
    id: u64,
    name: &'static str,
    label: String,
    start: Instant,
}

/// An open span; dropping it emits the matching [`Event::SpanEnd`]
/// with the measured duration. Disabled spans (from a no-op handle)
/// are inert and their children are disabled too, so instrumented code
/// can thread `&Span` unconditionally.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// A span that emits nothing and parents nothing.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span actually emits.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a child span (disabled if `self` is).
    pub fn child(&self, name: &'static str, label: impl Into<String>) -> Span {
        match &self.inner {
            Some(inner) => inner.obs.open_span(name, label.into(), Some(inner.id)),
            None => Span::disabled(),
        }
    }

    /// This span's id (`None` when disabled).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| inner.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            if let Some(shared) = &inner.obs.shared {
                shared.sink.emit(&Event::SpanEnd {
                    id: inner.id,
                    name: inner.name.to_string(),
                    label: inner.label,
                    micros: inner.start.elapsed().as_micros() as u64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_obs(verbosity: Verbosity) -> (Obs, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Obs::new(sink.clone(), verbosity), sink)
    }

    #[test]
    fn noop_handle_is_inert() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        assert!(!obs.solve_detail());
        let span = obs.span("campaign", "x");
        assert!(!span.enabled());
        assert!(span.id().is_none());
        assert!(!span.child("batch", "y").enabled());
        obs.progress(1, 2, 0.5);
        obs.counter_add("cells_solved", 3);
        obs.flush_counters();
        obs.flush();
    }

    #[test]
    fn spans_nest_and_close_in_lifo_order() {
        let (obs, sink) = memory_obs(Verbosity::Solve);
        {
            let root = obs.span("campaign", "jobs 0..4");
            let child = root.child("batch", "0..2");
            let grand = child.child("solve", "s#0 dp");
            drop(grand);
        }
        let events = sink.take();
        assert_eq!(events.len(), 6, "{events:?}");
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "span_start",
                "span_start",
                "span_start",
                "span_end",
                "span_end",
                "span_end"
            ]
        );
        // Parent links form the chain root -> child -> grandchild.
        let ids: Vec<(u64, Option<u64>)> = events[..3]
            .iter()
            .map(|e| match e {
                Event::SpanStart { id, parent, .. } => (*id, *parent),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids[0].1, None);
        assert_eq!(ids[1].1, Some(ids[0].0));
        assert_eq!(ids[2].1, Some(ids[1].0));
    }

    #[test]
    fn progress_derives_throughput_and_eta() {
        let (obs, sink) = memory_obs(Verbosity::Progress);
        obs.progress(10, 30, 2.0);
        match &sink.take()[0] {
            Event::Progress {
                done,
                total,
                jobs_per_sec,
                eta_secs,
            } => {
                assert_eq!((*done, *total), (10, 30));
                assert!((jobs_per_sec - 5.0).abs() < 1e-12);
                assert!((eta_secs - 4.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Degenerate snapshots never emit non-finite numbers.
        obs.progress(0, 30, 0.0);
        match &sink.take()[0] {
            Event::Progress {
                jobs_per_sec,
                eta_secs,
                ..
            } => assert_eq!((*jobs_per_sec, *eta_secs), (0.0, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_and_flush_in_name_order() {
        let (obs, sink) = memory_obs(Verbosity::Progress);
        obs.counter_add("cells_solved", 2);
        obs.counter_add("cells_failed", 1);
        obs.counter_add("cells_solved", 3);
        assert!(sink.is_empty(), "counters are silent until flushed");
        obs.flush_counters();
        let events = sink.take();
        assert_eq!(
            events,
            vec![
                Event::Counter {
                    name: "cells_failed".into(),
                    value: 1
                },
                Event::Counter {
                    name: "cells_solved".into(),
                    value: 5
                },
            ]
        );
        obs.flush_counters();
        assert!(sink.is_empty(), "flush resets the counters");
    }

    #[test]
    fn verbosity_gates_solve_detail_only() {
        let (progress, _) = memory_obs(Verbosity::Progress);
        let (solve, _) = memory_obs(Verbosity::Solve);
        assert!(progress.enabled() && !progress.solve_detail());
        assert!(solve.enabled() && solve.solve_detail());
    }
}
