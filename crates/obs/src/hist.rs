//! Streaming distribution statistics: the P² quantile sketch and the
//! metric accumulator built on it.
//!
//! This machinery predates the crate — it started life inside the
//! engine's `stream` module feeding the fleet's deterministic
//! aggregates, and moved here so telemetry histograms and deterministic
//! statistics share one implementation. The engine re-exports these
//! types, so its public API is unchanged.
//!
//! **Determinism.** All state transitions are pure functions of the
//! value sequence: pushing the same values in the same order always
//! yields bit-identical state, regardless of thread count or tracing.

use serde::{Deserialize, Serialize};

/// Distribution statistics of one metric over a group of observations.
///
/// Produced incrementally by [`MetricAccumulator`]; `p50`/`p90` are P²
/// estimates there (exact while `count < 5`). [`Stats::of`] computes the
/// exact batch equivalent for small slices (tests, one-shot reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (P² estimate when streaming).
    pub p50: f64,
    /// 90th percentile (P² estimate when streaming).
    pub p90: f64,
    /// 99th percentile (P² estimate when streaming) — the latency-SLO
    /// tail. Old serialized traces without this field read back as `0.0`.
    pub p99: f64,
}

impl Stats {
    /// Exact batch statistics of a slice (percentiles by
    /// nearest-rank on the sorted values). Zeroes when empty.
    pub fn of(values: &[f64]) -> Stats {
        if values.is_empty() {
            return Stats::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Stats {
            count: values.len(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: rank(0.5),
            p90: rank(0.9),
            p99: rank(0.99),
        }
    }
}

/// The P² (Jain–Chlamtac 1985) single-quantile estimator: five markers,
/// O(1) state, no stored samples. Exact until the fifth observation,
/// a parabolic-interpolation estimate afterwards.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    quantile: f64,
    /// Marker heights (first 5 observations verbatim until initialized).
    heights: [f64; 5],
    /// Marker positions (1-based, as in the paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// An estimator for the given quantile in `(0, 1)`.
    pub fn new(quantile: f64) -> Self {
        assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
        P2Quantile {
            quantile,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [
                1.0,
                1.0 + 2.0 * quantile,
                1.0 + 4.0 * quantile,
                3.0 + 2.0 * quantile,
                5.0,
            ],
            increments: [0.0, quantile / 2.0, quantile, (1.0 + quantile) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Folds one observation in.
    pub fn push(&mut self, value: f64) {
        if self.count < 5 {
            self.heights[self.count] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Locate the cell and bump the marker positions above it.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            // heights[k] <= value < heights[k + 1]
            (0..4)
                .find(|&i| value < self.heights[i + 1])
                .expect("value is within [heights[0], heights[4])")
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (delta >= 1.0 && step_up) || (delta <= -1.0 && step_down) {
                let d = if delta >= 1.0 { 1.0 } else { -1.0 };
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// The current estimate (exact for fewer than five observations;
    /// `0.0` with none).
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n @ 1..=4 => {
                let mut sorted = self.heights[..n].to_vec();
                sorted.sort_by(f64::total_cmp);
                sorted[((n - 1) as f64 * self.quantile).round() as usize]
            }
            _ => self.heights[2],
        }
    }
}

/// Streaming accumulator for one metric: count, sum, min, max plus P²
/// sketches for p50, p90, and p99. Doubles as the telemetry layer's
/// wall-clock histogram.
#[derive(Clone, Debug)]
pub struct MetricAccumulator {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for MetricAccumulator {
    fn default() -> Self {
        MetricAccumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        }
    }
}

impl MetricAccumulator {
    /// Folds one observation in.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.p50.push(value);
        self.p90.push(value);
        self.p99.push(value);
    }

    /// Observations folded so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Running mean (`0.0` with no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observed so far (`+∞` sentinel with no observations).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed so far (`-∞` sentinel with no observations).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot of the accumulated distribution (all-zero when empty,
    /// mirroring [`Stats::of`] on an empty slice).
    pub fn stats(&self) -> Stats {
        if self.count == 0 {
            return Stats::default();
        }
        Stats {
            count: self.count,
            mean: self.mean(),
            min: self.min,
            max: self.max,
            p50: self.p50.estimate(),
            p90: self.p90.estimate(),
            p99: self.p99.estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_counts_are_exact() {
        let mut acc = MetricAccumulator::default();
        for v in [3.0, 1.0, 2.0] {
            acc.push(v);
        }
        let s = acc.stats();
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0, "exact median below five observations");
    }

    #[test]
    fn empty_accumulator_matches_empty_slice() {
        assert_eq!(MetricAccumulator::default().stats(), Stats::of(&[]));
        assert_eq!(MetricAccumulator::default().min(), f64::INFINITY);
        assert_eq!(MetricAccumulator::default().max(), f64::NEG_INFINITY);
    }

    #[test]
    fn sketch_tracks_true_quantiles_on_uniform_noise() {
        let mut rng = StdRng::seed_from_u64(99);
        let values: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>() * 100.0).collect();
        let mut acc = MetricAccumulator::default();
        for &v in &values {
            acc.push(v);
        }
        let streamed = acc.stats();
        let exact = Stats::of(&values);
        assert_eq!(streamed.count, exact.count);
        assert!((streamed.mean - exact.mean).abs() < 1e-9);
        assert_eq!(streamed.min, exact.min);
        assert_eq!(streamed.max, exact.max);
        // P² on 5k uniform samples lands within a couple percent.
        assert!(
            (streamed.p50 - exact.p50).abs() < 3.0,
            "p50 {} vs {}",
            streamed.p50,
            exact.p50
        );
        assert!(
            (streamed.p90 - exact.p90).abs() < 3.0,
            "p90 {} vs {}",
            streamed.p90,
            exact.p90
        );
        assert!(
            (streamed.p99 - exact.p99).abs() < 3.0,
            "p99 {} vs {}",
            streamed.p99,
            exact.p99
        );
    }

    #[test]
    fn folding_is_deterministic_for_a_fixed_order() {
        let values: Vec<f64> = (0..1_000).map(|i| ((i * 37) % 101) as f64).collect();
        let run = || {
            let mut acc = MetricAccumulator::default();
            for &v in &values {
                acc.push(v);
            }
            acc.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn constant_stream_collapses_everywhere() {
        let mut acc = MetricAccumulator::default();
        for _ in 0..100 {
            acc.push(7.5);
        }
        let s = acc.stats();
        assert_eq!(
            (s.min, s.max, s.p50, s.p90, s.p99),
            (7.5, 7.5, 7.5, 7.5, 7.5)
        );
        assert!((s.mean - 7.5).abs() < 1e-12);
    }
}
