//! Pluggable event sinks: where telemetry goes.
//!
//! A [`Sink`] receives every [`Event`] an [`crate::Obs`] handle emits.
//! Sinks are shared across worker threads (`Send + Sync`) and must
//! serialize their own interior state; emission order for events
//! produced concurrently (per-solve spans under rayon) is not
//! deterministic — which is fine, because telemetry is out-of-band by
//! contract and never feeds back into results.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Receives telemetry events.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards everything. The zero-cost default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Collects events in memory — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Writes one JSON object per line to a file, buffered. Each line gets
/// a wall-clock `ts_ms` timestamp at write time.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

/// Unix-epoch milliseconds now (0 if the clock is before the epoch).
pub(crate) fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json_line(Some(unix_ms()));
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        // Telemetry must never abort the run it observes; a full disk
        // loses trace lines, not results.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Duplicates every event to each inner sink (e.g. a trace file plus a
/// heartbeat writer).
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A sink broadcasting to `sinks` in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(value: u64) -> Event {
        Event::Counter {
            name: "cells_solved".into(),
            value,
        }
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        sink.emit(&counter(1));
        sink.emit(&counter(2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshot(), vec![counter(1), counter(2)]);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_timestamped_line_per_event() {
        let path = std::env::temp_dir().join(format!("obs-sink-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).expect("create trace file");
            sink.emit(&counter(7));
            sink.emit(&counter(8));
        } // drop flushes
        let text = std::fs::read_to_string(&path).expect("read trace file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"kind\":\"counter\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"ts_ms\":"), "{}", lines[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fanout_broadcasts() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone() as Arc<dyn Sink>, b.clone() as Arc<dyn Sink>]);
        fan.emit(&counter(3));
        fan.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
