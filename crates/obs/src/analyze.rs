//! Trace forensics: everything the workspace computes *from* a parsed
//! [`Trace`].
//!
//! [`Analysis::of`] reconstructs the span trees (keyed by shard/attempt
//! provenance so concatenated multi-shard traces cannot collide), and
//! derives:
//!
//! - **per-phase profiles** — for every span name, how many spans ran,
//!   their total wall-clock, and their *self* time (total minus direct
//!   children — the number that says where the time actually went);
//! - **top-N slowest solves** — the individual `solve` spans worth
//!   staring at;
//! - **batch timeline** and **throughput curve** — `batch` spans and
//!   `progress` events in run order;
//! - **supervision forensics** ([`SchedAnalysis`]) — per-shard attempt
//!   timelines with retry/backoff causality, op totals, and a
//!   slot-utilization summary when the trace carries timestamps.
//!
//! Rendering lives in `engine::output::render_analysis` (table / CSV /
//! JSON, with timing-free `-det` variants for CI byte-diffing); this
//! module is pure computation.

use crate::event::{Event, SchedOp};
use crate::hist::Stats;
use crate::reader::Trace;
use std::collections::BTreeMap;

/// Wall-clock profile of one span name across a whole trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Span name (`campaign`, `batch`, `solve`, `dp_table`, …).
    pub name: String,
    /// Closed spans with this name.
    pub count: usize,
    /// Spans that opened but never closed (torn traces).
    pub open: usize,
    /// Sum of the closed spans' durations, microseconds.
    pub total_micros: u64,
    /// Total minus time attributed to direct children, microseconds.
    pub self_micros: u64,
}

/// One slow `solve` span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowSolve {
    /// The span's instance label (scenario/job/solver).
    pub label: String,
    /// Measured duration, microseconds.
    pub micros: u64,
    /// Shard/attempt the span ran in, when known.
    pub provenance: Option<(usize, usize)>,
}

/// One closed `batch` span, in trace order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchSpan {
    /// The batch label (job range).
    pub label: String,
    /// Measured duration, microseconds.
    pub micros: u64,
    /// Shard/attempt the batch ran in, when known.
    pub provenance: Option<(usize, usize)>,
}

/// One `progress` event, in trace order.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputPoint {
    /// Jobs done at this snapshot.
    pub done: usize,
    /// Total jobs.
    pub total: usize,
    /// Observed jobs/second.
    pub jobs_per_sec: f64,
    /// Shard/attempt the snapshot came from, when known.
    pub provenance: Option<(usize, usize)>,
}

/// One `histogram` event.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramLine {
    /// Histogram name.
    pub name: String,
    /// Unit of the recorded values.
    pub unit: String,
    /// The snapshot.
    pub stats: Stats,
}

/// One supervision event in a shard's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptEvent {
    /// Attempt generation.
    pub attempt: usize,
    /// What happened.
    pub op: SchedOp,
    /// Retry backoff gate (coordinator ms), for [`SchedOp::Retry`].
    pub not_before_ms: Option<u64>,
    /// Wall timestamp of the line, when stamped.
    pub ts_ms: Option<u64>,
}

/// The supervision story of one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardTimeline {
    /// Shard index.
    pub shard: usize,
    /// Its events, in trace order.
    pub events: Vec<AttemptEvent>,
    /// Worker launches (in-order plus stolen).
    pub launches: usize,
    /// Retries scheduled after failures.
    pub retries: usize,
    /// Launches that jumped the strict shard order.
    pub steals: usize,
    /// Stale-heartbeat kills.
    pub stale_kills: usize,
    /// Superseded results rejected by the attempt fence.
    pub fence_rejects: usize,
    /// Terminal outcome ([`SchedOp::Done`] or [`SchedOp::Exhausted`]),
    /// `None` if the trace ends mid-flight.
    pub outcome: Option<SchedOp>,
}

/// Slot-occupancy summary derived from timestamped launch/settle pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotUtilization {
    /// Most attempts in flight at once.
    pub max_concurrent: usize,
    /// Mean attempts in flight over the supervised window.
    pub avg_concurrent: f64,
    /// Sum of attempt running time, milliseconds.
    pub busy_ms: u64,
    /// First-launch to last-settle window, milliseconds.
    pub window_ms: u64,
}

/// Everything derived from the `sched` events of a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchedAnalysis {
    /// Per-shard timelines, sorted by shard.
    pub shards: Vec<ShardTimeline>,
    /// Total events per op, in [`SchedOp::ALL`] order (zero counts
    /// included).
    pub op_totals: Vec<(SchedOp, usize)>,
    /// Slot occupancy, when the trace is timestamped.
    pub utilization: Option<SlotUtilization>,
}

impl SchedAnalysis {
    /// Whether the trace carried any supervision events at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Total count for one op.
    pub fn total(&self, op: SchedOp) -> usize {
        self.op_totals
            .iter()
            .find(|(o, _)| *o == op)
            .map_or(0, |(_, n)| *n)
    }
}

/// The full forensic digest of one trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Well-formed lines parsed.
    pub parsed_lines: usize,
    /// Malformed lines (rendered [`crate::ParseError`]s).
    pub malformed: Vec<String>,
    /// Events per kind, sorted by kind name (zero-count kinds omitted).
    pub kind_counts: Vec<(String, usize)>,
    /// Per-span-name wall-clock profiles, sorted by name.
    pub phases: Vec<PhaseProfile>,
    /// Top-N slowest closed `solve` spans, slowest first.
    pub slowest: Vec<SlowSolve>,
    /// Closed `batch` spans, in trace order.
    pub batches: Vec<BatchSpan>,
    /// `progress` events, in trace order.
    pub throughput: Vec<ThroughputPoint>,
    /// Counter totals summed across shard segments, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `histogram` events, in trace order.
    pub histograms: Vec<HistogramLine>,
    /// Span starts without a matching end plus ends without a start.
    pub unmatched_spans: usize,
    /// Supervision forensics.
    pub sched: SchedAnalysis,
}

impl Analysis {
    /// Number of slowest solves kept by [`Analysis::of`].
    pub const TOP_SOLVES: usize = 10;

    /// Computes the full digest of `trace`, keeping the
    /// [`Self::TOP_SOLVES`] slowest solve spans.
    pub fn of(trace: &Trace) -> Analysis {
        Analysis::with_top(trace, Self::TOP_SOLVES)
    }

    /// [`Analysis::of`] with an explicit top-N solve budget.
    pub fn with_top(trace: &Trace, top: usize) -> Analysis {
        let mut kind_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms = Vec::new();
        let mut throughput = Vec::new();

        // Span reconstruction, keyed by (provenance, id) so ids reused
        // across concatenated per-process traces stay distinct.
        type SpanKey = (Option<(usize, usize)>, u64);
        struct OpenSpan {
            name: String,
            ended: bool,
        }
        let mut starts: BTreeMap<SpanKey, OpenSpan> = BTreeMap::new();
        struct ClosedSpan {
            key: SpanKey,
            parent: Option<SpanKey>,
            name: String,
            label: String,
            micros: u64,
            provenance: Option<(usize, usize)>,
        }
        let mut closed: Vec<ClosedSpan> = Vec::new();
        let mut parents: BTreeMap<SpanKey, Option<SpanKey>> = BTreeMap::new();
        let mut orphan_ends = 0usize;
        let mut sched_records = Vec::new();

        for line in &trace.lines {
            *kind_counts.entry(line.event.kind()).or_insert(0) += 1;
            match &line.event {
                Event::SpanStart {
                    id, parent, name, ..
                } => {
                    let key = (line.provenance, *id);
                    parents.insert(key, parent.map(|p| (line.provenance, p)));
                    starts.insert(
                        key,
                        OpenSpan {
                            name: name.clone(),
                            ended: false,
                        },
                    );
                }
                Event::SpanEnd {
                    id,
                    name,
                    label,
                    micros,
                } => {
                    let key = (line.provenance, *id);
                    let parent = parents.get(&key).copied().flatten();
                    match starts.get_mut(&key) {
                        Some(open) if !open.ended => open.ended = true,
                        _ => orphan_ends += 1,
                    }
                    closed.push(ClosedSpan {
                        key,
                        parent,
                        name: name.clone(),
                        label: label.clone(),
                        micros: *micros,
                        provenance: line.provenance,
                    });
                }
                Event::Progress {
                    done,
                    total,
                    jobs_per_sec,
                    ..
                } => throughput.push(ThroughputPoint {
                    done: *done,
                    total: *total,
                    jobs_per_sec: *jobs_per_sec,
                    provenance: line.provenance,
                }),
                Event::Counter { name, value } => {
                    *counters.entry(name.clone()).or_insert(0) += value;
                }
                Event::Histogram { name, unit, stats } => histograms.push(HistogramLine {
                    name: name.clone(),
                    unit: unit.clone(),
                    stats: *stats,
                }),
                Event::Sched {
                    op,
                    shard,
                    attempt,
                    not_before_ms,
                } => sched_records.push((
                    *shard,
                    AttemptEvent {
                        attempt: *attempt,
                        op: *op,
                        not_before_ms: *not_before_ms,
                        ts_ms: line.ts_ms,
                    },
                )),
                Event::ShardSegment { .. } => {}
            }
        }

        // Self time: each closed span's duration minus its direct
        // children's.
        let mut child_micros: BTreeMap<SpanKey, u64> = BTreeMap::new();
        for span in &closed {
            if let Some(parent) = span.parent {
                *child_micros.entry(parent).or_insert(0) += span.micros;
            }
        }
        let mut phases: BTreeMap<String, PhaseProfile> = BTreeMap::new();
        for span in &closed {
            let entry = phases
                .entry(span.name.clone())
                .or_insert_with(|| PhaseProfile {
                    name: span.name.clone(),
                    count: 0,
                    open: 0,
                    total_micros: 0,
                    self_micros: 0,
                });
            entry.count += 1;
            entry.total_micros += span.micros;
            entry.self_micros += span
                .micros
                .saturating_sub(child_micros.get(&span.key).copied().unwrap_or(0));
        }
        let unended = starts.values().filter(|open| !open.ended);
        for open in unended.clone() {
            let entry = phases
                .entry(open.name.clone())
                .or_insert_with(|| PhaseProfile {
                    name: open.name.clone(),
                    count: 0,
                    open: 0,
                    total_micros: 0,
                    self_micros: 0,
                });
            entry.open += 1;
        }
        let unmatched_spans = unended.count() + orphan_ends;

        let mut slowest: Vec<SlowSolve> = closed
            .iter()
            .filter(|span| span.name == "solve")
            .map(|span| SlowSolve {
                label: span.label.clone(),
                micros: span.micros,
                provenance: span.provenance,
            })
            .collect();
        slowest.sort_by(|a, b| b.micros.cmp(&a.micros).then_with(|| a.label.cmp(&b.label)));
        slowest.truncate(top);

        let batches: Vec<BatchSpan> = closed
            .iter()
            .filter(|span| span.name == "batch")
            .map(|span| BatchSpan {
                label: span.label.clone(),
                micros: span.micros,
                provenance: span.provenance,
            })
            .collect();

        Analysis {
            parsed_lines: trace.lines.len(),
            malformed: trace.errors.iter().map(|e| e.to_string()).collect(),
            kind_counts: kind_counts
                .into_iter()
                .map(|(kind, n)| (kind.to_string(), n))
                .collect(),
            phases: phases.into_values().collect(),
            slowest,
            batches,
            throughput,
            counters: counters.into_iter().collect(),
            histograms,
            unmatched_spans,
            sched: sched_analysis(sched_records),
        }
    }

    /// The profile for one span name, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.name == name)
    }
}

fn sched_analysis(records: Vec<(usize, AttemptEvent)>) -> SchedAnalysis {
    if records.is_empty() {
        return SchedAnalysis {
            op_totals: SchedOp::ALL.iter().map(|op| (*op, 0)).collect(),
            ..SchedAnalysis::default()
        };
    }
    let mut by_shard: BTreeMap<usize, Vec<AttemptEvent>> = BTreeMap::new();
    let mut op_totals: BTreeMap<SchedOp, usize> = SchedOp::ALL.iter().map(|op| (*op, 0)).collect();
    for (shard, event) in &records {
        *op_totals.get_mut(&event.op).expect("all ops present") += 1;
        by_shard.entry(*shard).or_default().push(event.clone());
    }
    let shards = by_shard
        .into_iter()
        .map(|(shard, events)| {
            let count = |op: SchedOp| events.iter().filter(|e| e.op == op).count();
            let outcome = events
                .iter()
                .rev()
                .map(|e| e.op)
                .find(|op| matches!(op, SchedOp::Done | SchedOp::Exhausted));
            ShardTimeline {
                shard,
                launches: count(SchedOp::Launch) + count(SchedOp::Steal),
                retries: count(SchedOp::Retry),
                steals: count(SchedOp::Steal),
                stale_kills: count(SchedOp::StaleKill),
                fence_rejects: count(SchedOp::FenceReject),
                outcome,
                events,
            }
        })
        .collect();
    SchedAnalysis {
        shards,
        op_totals: op_totals.into_iter().collect(),
        utilization: utilization(&records),
    }
}

/// Attempts' running intervals from timestamped launch→settle pairs;
/// `None` unless every launch has a timestamp and a settling event.
fn utilization(records: &[(usize, AttemptEvent)]) -> Option<SlotUtilization> {
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    for (i, (shard, event)) in records.iter().enumerate() {
        if !matches!(event.op, SchedOp::Launch | SchedOp::Steal) {
            continue;
        }
        let start = event.ts_ms?;
        // The attempt settles at its first later done / retry /
        // stale-kill / exhausted event.
        let end = records[i + 1..]
            .iter()
            .find(|(s, e)| {
                *s == *shard
                    && e.attempt == event.attempt
                    && matches!(
                        e.op,
                        SchedOp::Done | SchedOp::Retry | SchedOp::StaleKill | SchedOp::Exhausted
                    )
            })
            .and_then(|(_, e)| e.ts_ms)?;
        intervals.push((start, end.max(start)));
    }
    if intervals.is_empty() {
        return None;
    }
    let window_start = intervals.iter().map(|(s, _)| *s).min()?;
    let window_end = intervals.iter().map(|(_, e)| *e).max()?;
    let window_ms = (window_end - window_start).max(1);
    let busy_ms: u64 = intervals.iter().map(|(s, e)| e - s).sum();
    // Sweep the edges for peak concurrency.
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(intervals.len() * 2);
    for (s, e) in &intervals {
        edges.push((*s, 1));
        edges.push((*e, -1));
    }
    edges.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i64;
    let mut max_concurrent = 0i64;
    for (_, delta) in edges {
        live += delta;
        max_concurrent = max_concurrent.max(live);
    }
    Some(SlotUtilization {
        max_concurrent: max_concurrent.max(0) as usize,
        avg_concurrent: busy_ms as f64 / window_ms as f64,
        busy_ms,
        window_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(event: Event, ts_ms: Option<u64>) -> String {
        event.to_json_line(ts_ms)
    }

    fn sched(op: SchedOp, shard: usize, attempt: usize, ts: u64) -> String {
        line(
            Event::Sched {
                op,
                shard,
                attempt,
                not_before_ms: (op == SchedOp::Retry).then_some(ts + 100),
            },
            Some(ts),
        )
    }

    #[test]
    fn phase_profiles_attribute_self_time() {
        // campaign(100µs) > solve(60µs) > phase(35µs): campaign self 40,
        // solve self 25, phase self 35.
        let text = [
            line(
                Event::SpanStart {
                    id: 1,
                    parent: None,
                    name: "campaign".into(),
                    label: "c".into(),
                },
                None,
            ),
            line(
                Event::SpanStart {
                    id: 2,
                    parent: Some(1),
                    name: "solve".into(),
                    label: "s".into(),
                },
                None,
            ),
            line(
                Event::SpanStart {
                    id: 3,
                    parent: Some(2),
                    name: "phase".into(),
                    label: "dp_table".into(),
                },
                None,
            ),
            line(
                Event::SpanEnd {
                    id: 3,
                    name: "phase".into(),
                    label: "dp_table".into(),
                    micros: 35,
                },
                None,
            ),
            line(
                Event::SpanEnd {
                    id: 2,
                    name: "solve".into(),
                    label: "s".into(),
                    micros: 60,
                },
                None,
            ),
            line(
                Event::SpanEnd {
                    id: 1,
                    name: "campaign".into(),
                    label: "c".into(),
                    micros: 100,
                },
                None,
            ),
        ]
        .join("\n");
        let analysis = Analysis::of(&Trace::parse(&text));
        assert_eq!(analysis.unmatched_spans, 0);
        let campaign = analysis.phase("campaign").unwrap();
        assert_eq!((campaign.total_micros, campaign.self_micros), (100, 40));
        let solve = analysis.phase("solve").unwrap();
        assert_eq!((solve.total_micros, solve.self_micros), (60, 25));
        let phase = analysis.phase("phase").unwrap();
        assert_eq!((phase.total_micros, phase.self_micros), (35, 35));
        assert_eq!(analysis.slowest.len(), 1);
        assert_eq!(analysis.slowest[0].micros, 60);
    }

    #[test]
    fn segment_markers_keep_reused_span_ids_distinct() {
        // Two shard traces concatenated; both use span id 1. Without
        // provenance the second start would clobber the first.
        let seg0 = line(
            Event::ShardSegment {
                shard: 0,
                attempt: 0,
            },
            None,
        );
        let seg1 = line(
            Event::ShardSegment {
                shard: 1,
                attempt: 0,
            },
            None,
        );
        let start = |label: &str| {
            line(
                Event::SpanStart {
                    id: 1,
                    parent: None,
                    name: "campaign".into(),
                    label: label.into(),
                },
                None,
            )
        };
        let end = |label: &str, micros| {
            line(
                Event::SpanEnd {
                    id: 1,
                    name: "campaign".into(),
                    label: label.into(),
                    micros,
                },
                None,
            )
        };
        let text = [
            seg0,
            start("shard0"),
            end("shard0", 10),
            seg1,
            start("shard1"),
            end("shard1", 20),
        ]
        .join("\n");
        let analysis = Analysis::of(&Trace::parse(&text));
        assert_eq!(analysis.unmatched_spans, 0, "{analysis:?}");
        let campaign = analysis.phase("campaign").unwrap();
        assert_eq!(campaign.count, 2);
        assert_eq!(campaign.total_micros, 30);
    }

    #[test]
    fn counters_sum_across_segments_and_torn_spans_are_counted() {
        let text = [
            line(
                Event::ShardSegment {
                    shard: 0,
                    attempt: 0,
                },
                None,
            ),
            line(
                Event::Counter {
                    name: "cells_solved".into(),
                    value: 3,
                },
                None,
            ),
            line(
                Event::SpanStart {
                    id: 9,
                    parent: None,
                    name: "batch".into(),
                    label: "torn".into(),
                },
                None,
            ),
            line(
                Event::ShardSegment {
                    shard: 1,
                    attempt: 1,
                },
                None,
            ),
            line(
                Event::Counter {
                    name: "cells_solved".into(),
                    value: 4,
                },
                None,
            ),
        ]
        .join("\n");
        let analysis = Analysis::of(&Trace::parse(&text));
        assert_eq!(analysis.counters, vec![("cells_solved".to_string(), 7)]);
        assert_eq!(analysis.unmatched_spans, 1);
        assert_eq!(analysis.phase("batch").unwrap().open, 1);
    }

    #[test]
    fn sched_timelines_capture_retry_and_steal_causality() {
        let text = [
            sched(SchedOp::Claim, 0, 0, 0),
            sched(SchedOp::Launch, 0, 0, 0),
            sched(SchedOp::Retry, 0, 0, 50),
            sched(SchedOp::Claim, 1, 0, 60),
            sched(SchedOp::Steal, 1, 0, 60),
            sched(SchedOp::Claim, 0, 1, 200),
            sched(SchedOp::Launch, 0, 1, 200),
            sched(SchedOp::Done, 1, 0, 260),
            sched(SchedOp::Done, 0, 1, 300),
        ]
        .join("\n");
        let analysis = Analysis::of(&Trace::parse(&text));
        let sched = &analysis.sched;
        assert!(!sched.is_empty());
        assert_eq!(sched.total(SchedOp::Retry), 1);
        assert_eq!(sched.total(SchedOp::Steal), 1);
        assert_eq!(sched.shards.len(), 2);
        let shard0 = &sched.shards[0];
        assert_eq!(shard0.shard, 0);
        assert_eq!(shard0.launches, 2);
        assert_eq!(shard0.retries, 1);
        assert_eq!(shard0.outcome, Some(SchedOp::Done));
        // The retry carries its backoff gate.
        let retry = shard0
            .events
            .iter()
            .find(|e| e.op == SchedOp::Retry)
            .unwrap();
        assert_eq!(retry.not_before_ms, Some(150));
        let shard1 = &sched.shards[1];
        assert_eq!((shard1.steals, shard1.launches), (1, 1));
        // Utilization: shard0 a0 0..50, shard1 a0 60..260, shard0 a1
        // 200..300 → busy 350, window 300, peak 2.
        let util = sched.utilization.as_ref().expect("timestamps present");
        assert_eq!(util.max_concurrent, 2);
        assert_eq!((util.busy_ms, util.window_ms), (350, 300));
    }

    #[test]
    fn untimestamped_sched_traces_skip_utilization() {
        let text = [
            Event::Sched {
                op: SchedOp::Launch,
                shard: 0,
                attempt: 0,
                not_before_ms: None,
            }
            .to_json_line(None),
            Event::Sched {
                op: SchedOp::Done,
                shard: 0,
                attempt: 0,
                not_before_ms: None,
            }
            .to_json_line(None),
        ]
        .join("\n");
        let analysis = Analysis::of(&Trace::parse(&text));
        assert!(analysis.sched.utilization.is_none());
        assert_eq!(analysis.sched.shards[0].outcome, Some(SchedOp::Done));
    }
}
