//! The JSONL trace reader: the exact inverse of
//! [`Event::to_json_line`].
//!
//! [`Trace::parse`] (or [`Trace::load`]) turns trace text back into
//! typed [`Event`]s line by line. The wire format is a *flat* JSON
//! object per line — no nesting — so the scanner here is a small
//! hand-rolled tokenizer over `{"key":value,…}` rather than a general
//! JSON parser: strings with the full escape repertoire (including
//! `\uXXXX` and surrogate pairs), integers, floats, `null`. Field
//! *order* is immaterial and unknown keys are tolerated (forward
//! compatibility with future writer fields); duplicate keys are
//! rejected.
//!
//! Malformed input **never panics**: every defect becomes a typed
//! [`ParseError`] carrying its 1-based line number, collected in
//! [`Trace::errors`] while the well-formed lines still parse. Floats
//! written as `null` (the writer's encoding for non-finite values)
//! come back as `f64::NAN` — lossy by design, but re-emitting the
//! parsed event reproduces the original bytes, which is the fixpoint
//! property `crates/obs/tests/wire_roundtrip.rs` pins.

use crate::event::{Event, SchedOp};
use crate::hist::Stats;
use std::path::Path;

/// A defect in trace input, located by its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The trace file could not be read at all.
    Io {
        /// Path of the unreadable file.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// The line is not one well-formed flat JSON object.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What the scanner choked on.
        message: String,
    },
    /// The same key appeared twice in one line.
    DuplicateKey {
        /// 1-based line number.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// The line's `"kind"` names no known event.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The unrecognized discriminant.
        kind: String,
    },
    /// A field the event kind requires is absent.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The event kind being parsed.
        kind: String,
        /// The absent field.
        field: &'static str,
    },
    /// A field is present but holds the wrong type or an invalid value.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
        /// What was expected / what was found.
        message: String,
    },
}

impl ParseError {
    /// The 1-based line number the error points at (`None` for I/O
    /// errors, which concern the whole file).
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseError::Io { .. } => None,
            ParseError::Syntax { line, .. }
            | ParseError::DuplicateKey { line, .. }
            | ParseError::UnknownKind { line, .. }
            | ParseError::MissingField { line, .. }
            | ParseError::BadValue { line, .. } => Some(*line),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io { path, message } => write!(f, "cannot read trace {path}: {message}"),
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key \"{key}\"")
            }
            ParseError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown event kind \"{kind}\"")
            }
            ParseError::MissingField { line, kind, field } => {
                write!(f, "line {line}: {kind} event is missing \"{field}\"")
            }
            ParseError::BadValue {
                line,
                field,
                message,
            } => write!(f, "line {line}: bad \"{field}\": {message}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One successfully parsed trace line.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceLine {
    /// 1-based line number in the source text.
    pub line_no: usize,
    /// The decoded event.
    pub event: Event,
    /// The sink-stamped wall timestamp, when the line carried one.
    pub ts_ms: Option<u64>,
    /// Shard/attempt provenance, assigned from the most recent
    /// [`Event::ShardSegment`] marker (the marker line itself included).
    /// `None` before any marker — e.g. for the whole of a single-process
    /// trace, or the supervision prologue of an assembled fleet trace.
    pub provenance: Option<(usize, usize)>,
}

/// A parsed trace: every well-formed line as a [`TraceLine`], every
/// defect as a [`ParseError`]. Parsing is total — it never panics and
/// never stops at the first bad line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The well-formed lines, in input order.
    pub lines: Vec<TraceLine>,
    /// The defects, in input order.
    pub errors: Vec<ParseError>,
}

impl Trace {
    /// Parses trace text. Blank lines are skipped; everything else
    /// either becomes a [`TraceLine`] or a [`ParseError`]. Provenance
    /// is threaded from [`Event::ShardSegment`] markers as documented
    /// on [`TraceLine::provenance`].
    pub fn parse(text: &str) -> Trace {
        let mut trace = Trace::default();
        let mut provenance = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            match parse_line(raw, line_no) {
                Ok((event, ts_ms)) => {
                    if let Event::ShardSegment { shard, attempt } = event {
                        provenance = Some((shard, attempt));
                    }
                    trace.lines.push(TraceLine {
                        line_no,
                        event,
                        ts_ms,
                        provenance,
                    });
                }
                Err(e) => trace.errors.push(e),
            }
        }
        trace
    }

    /// Reads and parses the trace file at `path`.
    pub fn load(path: &Path) -> Result<Trace, ParseError> {
        let text = std::fs::read_to_string(path).map_err(|e| ParseError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(Trace::parse(&text))
    }

    /// The parsed events, in input order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.lines.iter().map(|l| &l.event)
    }
}

/// Parses one wire line into its event and optional `ts_ms` stamp.
pub fn parse_line(raw: &str, line_no: usize) -> Result<(Event, Option<u64>), ParseError> {
    let fields = scan_object(raw, line_no)?;
    let at = Fields {
        fields: &fields,
        line: line_no,
    };
    let kind = at.str_field("?", "kind")?;
    let kind_owned = kind.to_string();
    let req_u64 = |field| at.u64_field(&kind_owned, field);
    let req_f64 = |field| at.f64_field(&kind_owned, field);
    let req_str = |field| at.str_field(&kind_owned, field);
    let event = match kind {
        "span_start" => Event::SpanStart {
            id: req_u64("id")?,
            parent: at.opt_u64_or_null_field(&kind_owned, "parent")?,
            name: req_str("name")?.to_string(),
            label: req_str("label")?.to_string(),
        },
        "span_end" => Event::SpanEnd {
            id: req_u64("id")?,
            name: req_str("name")?.to_string(),
            label: req_str("label")?.to_string(),
            micros: req_u64("micros")?,
        },
        "progress" => Event::Progress {
            done: req_u64("done")? as usize,
            total: req_u64("total")? as usize,
            jobs_per_sec: req_f64("jobs_per_sec")?,
            eta_secs: req_f64("eta_secs")?,
        },
        "counter" => Event::Counter {
            name: req_str("name")?.to_string(),
            value: req_u64("value")?,
        },
        "histogram" => Event::Histogram {
            name: req_str("name")?.to_string(),
            unit: req_str("unit")?.to_string(),
            stats: Stats {
                count: req_u64("count")? as usize,
                mean: req_f64("mean")?,
                min: req_f64("min")?,
                max: req_f64("max")?,
                p50: req_f64("p50")?,
                p90: req_f64("p90")?,
                // Traces written before the p99 extension lack the field;
                // read them as 0.0 rather than rejecting the line.
                p99: at.opt_f64_field("p99")?.unwrap_or(0.0),
            },
        },
        "sched" => {
            let op_name = req_str("op")?;
            let op = SchedOp::parse(op_name).ok_or_else(|| ParseError::BadValue {
                line: line_no,
                field: "op".to_string(),
                message: format!("unknown sched op \"{op_name}\""),
            })?;
            Event::Sched {
                op,
                shard: req_u64("shard")? as usize,
                attempt: req_u64("attempt")? as usize,
                not_before_ms: at.opt_u64_field("not_before_ms")?,
            }
        }
        "segment" => Event::ShardSegment {
            shard: req_u64("shard")? as usize,
            attempt: req_u64("attempt")? as usize,
        },
        other => {
            return Err(ParseError::UnknownKind {
                line: line_no,
                kind: other.to_string(),
            })
        }
    };
    let ts_ms = at.opt_u64_field("ts_ms")?;
    Ok((event, ts_ms))
}

/// One scanned scalar value. The wire format is flat, so these are the
/// only value shapes a line may contain.
#[derive(Clone, Debug, PartialEq)]
enum Scalar {
    Null,
    /// An unparsed numeric literal; typing happens at field extraction
    /// (a `u64` field rejects fractions, an `f64` field accepts both).
    Num(String),
    Str(String),
}

struct Fields<'a> {
    fields: &'a [(String, Scalar)],
    line: usize,
}

impl Fields<'_> {
    fn get(&self, field: &str) -> Option<&Scalar> {
        self.fields
            .iter()
            .find(|(key, _)| key == field)
            .map(|(_, value)| value)
    }

    fn require(&self, kind: &str, field: &'static str) -> Result<&Scalar, ParseError> {
        self.get(field).ok_or(ParseError::MissingField {
            line: self.line,
            kind: kind.to_string(),
            field,
        })
    }

    fn bad(&self, field: &str, message: impl Into<String>) -> ParseError {
        ParseError::BadValue {
            line: self.line,
            field: field.to_string(),
            message: message.into(),
        }
    }

    fn as_u64(&self, field: &str, scalar: &Scalar) -> Result<u64, ParseError> {
        match scalar {
            Scalar::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| self.bad(field, format!("expected unsigned integer, got {raw}"))),
            other => Err(self.bad(field, format!("expected unsigned integer, got {other:?}"))),
        }
    }

    fn u64_field(&self, kind: &str, field: &'static str) -> Result<u64, ParseError> {
        let scalar = self.require(kind, field)?;
        self.as_u64(field, scalar)
    }

    fn f64_field(&self, kind: &str, field: &'static str) -> Result<f64, ParseError> {
        match self.require(kind, field)? {
            // The writer encodes non-finite floats as `null`.
            Scalar::Null => Ok(f64::NAN),
            Scalar::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| self.bad(field, format!("expected number, got {raw}"))),
            other => Err(self.bad(field, format!("expected number or null, got {other:?}"))),
        }
    }

    fn str_field<'a>(&'a self, kind: &str, field: &'static str) -> Result<&'a str, ParseError> {
        match self.require(kind, field)? {
            Scalar::Str(s) => Ok(s),
            other => Err(self.bad(field, format!("expected string, got {other:?}"))),
        }
    }

    /// An `f64` field that may be absent (`null` still means non-finite).
    fn opt_f64_field(&self, field: &'static str) -> Result<Option<f64>, ParseError> {
        match self.get(field) {
            None => Ok(None),
            Some(Scalar::Null) => Ok(Some(f64::NAN)),
            Some(Scalar::Num(raw)) => raw
                .parse::<f64>()
                .map(Some)
                .map_err(|_| self.bad(field, format!("expected number, got {raw}"))),
            Some(other) => Err(self.bad(field, format!("expected number or null, got {other:?}"))),
        }
    }

    /// A `u64` field that may be absent (but not `null`).
    fn opt_u64_field(&self, field: &'static str) -> Result<Option<u64>, ParseError> {
        match self.get(field) {
            None => Ok(None),
            Some(scalar) => self.as_u64(field, scalar).map(Some),
        }
    }

    /// A required field that is either a `u64` or `null`
    /// (`span_start.parent`).
    fn opt_u64_or_null_field(
        &self,
        kind: &str,
        field: &'static str,
    ) -> Result<Option<u64>, ParseError> {
        match self.require(kind, field)? {
            Scalar::Null => Ok(None),
            scalar => self.as_u64(field, scalar).map(Some),
        }
    }
}

/// Scans one `{"key":value,…}` line into its key/value pairs.
fn scan_object(raw: &str, line: usize) -> Result<Vec<(String, Scalar)>, ParseError> {
    let syntax = |message: String| ParseError::Syntax { line, message };
    let mut scanner = Scanner {
        bytes: raw.as_bytes(),
        raw,
        pos: 0,
        line,
    };
    scanner.skip_ws();
    scanner.expect(b'{')?;
    let mut fields: Vec<(String, Scalar)> = Vec::with_capacity(8);
    scanner.skip_ws();
    if !scanner.eat(b'}') {
        loop {
            scanner.skip_ws();
            let key = scanner.string()?;
            if fields.iter().any(|(existing, _)| *existing == key) {
                return Err(ParseError::DuplicateKey { line, key });
            }
            scanner.skip_ws();
            scanner.expect(b':')?;
            scanner.skip_ws();
            let value = scanner.scalar()?;
            fields.push((key, value));
            scanner.skip_ws();
            if scanner.eat(b',') {
                continue;
            }
            scanner.expect(b'}')?;
            break;
        }
    }
    scanner.skip_ws();
    if scanner.pos != scanner.bytes.len() {
        return Err(syntax(format!(
            "trailing input after object at byte {}",
            scanner.pos
        )));
    }
    Ok(fields)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    raw: &'a str,
    pos: usize,
    line: usize,
}

impl Scanner<'_> {
    fn syntax(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(self.syntax(format!("expected '{}' at byte {}", byte as char, self.pos)))
        }
    }

    /// One JSON string, cursor on the opening quote.
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the raw run up to the next structural byte. UTF-8
            // continuation bytes are ≥ 0x80, so byte scanning cannot
            // split a multi-byte character.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.raw[start..self.pos]);
            match self.peek() {
                None => return Err(self.syntax("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) => {
                    return Err(self.syntax(format!(
                        "raw control byte 0x{b:02x} in string at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    /// One escape sequence, cursor just past the backslash.
    fn escape(&mut self) -> Result<char, ParseError> {
        let Some(b) = self.peek() else {
            return Err(self.syntax("unterminated escape"));
        };
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let high = self.hex4()?;
                match high {
                    0xD800..=0xDBFF => {
                        // High surrogate: a \uXXXX low surrogate must follow.
                        if !(self.eat(b'\\') && self.eat(b'u')) {
                            return Err(self.syntax("lone high surrogate"));
                        }
                        let low = self.hex4()?;
                        if !(0xDC00..=0xDFFF).contains(&low) {
                            return Err(self.syntax("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.syntax("invalid surrogate pair"))?
                    }
                    0xDC00..=0xDFFF => return Err(self.syntax("lone low surrogate")),
                    code => char::from_u32(code)
                        .ok_or_else(|| self.syntax(format!("invalid \\u{code:04x}")))?,
                }
            }
            other => {
                return Err(self.syntax(format!("unknown escape '\\{}'", other as char)));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.syntax("truncated \\u escape"));
        }
        let digits = &self.raw[self.pos..end];
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| self.syntax(format!("bad \\u digits \"{digits}\"")))?;
        self.pos = end;
        Ok(code)
    }

    /// One scalar value: string, number, or `null`.
    fn scalar(&mut self) -> Result<Scalar, ParseError> {
        match self.peek() {
            Some(b'"') => self.string().map(Scalar::Str),
            Some(b'n') => {
                if self.raw[self.pos..].starts_with("null") {
                    self.pos += 4;
                    Ok(Scalar::Null)
                } else {
                    Err(self.syntax(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                self.eat(b'-');
                let digits_start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if self.pos == digits_start {
                    return Err(self.syntax(format!("bad number at byte {start}")));
                }
                if self.eat(b'.') {
                    let frac_start = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.pos += 1;
                    }
                    if self.pos == frac_start {
                        return Err(self.syntax(format!("bad number at byte {start}")));
                    }
                }
                if matches!(self.peek(), Some(b'e' | b'E')) {
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                    let exp_start = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.pos += 1;
                    }
                    if self.pos == exp_start {
                        return Err(self.syntax(format!("bad number at byte {start}")));
                    }
                }
                Ok(Scalar::Num(self.raw[start..self.pos].to_string()))
            }
            Some(b'{' | b'[') => Err(self.syntax(format!(
                "nested values are not part of the wire format (byte {})",
                self.pos
            ))),
            Some(other) => Err(self.syntax(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            ))),
            None => Err(self.syntax("unexpected end of line")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> Event {
        parse_line(line, 1).expect(line).0
    }

    #[test]
    fn every_kind_parses_back() {
        assert_eq!(
            one("{\"kind\":\"span_start\",\"id\":2,\"parent\":1,\"name\":\"solve\",\"label\":\"x\"}"),
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "solve".into(),
                label: "x".into(),
            }
        );
        assert_eq!(
            one(
                "{\"kind\":\"span_end\",\"id\":2,\"name\":\"solve\",\"label\":\"x\",\"micros\":17}"
            ),
            Event::SpanEnd {
                id: 2,
                name: "solve".into(),
                label: "x".into(),
                micros: 17,
            }
        );
        assert_eq!(
            one("{\"kind\":\"sched\",\"op\":\"steal\",\"shard\":5,\"attempt\":0}"),
            Event::Sched {
                op: SchedOp::Steal,
                shard: 5,
                attempt: 0,
                not_before_ms: None,
            }
        );
        assert_eq!(
            one("{\"kind\":\"segment\",\"shard\":1,\"attempt\":2}"),
            Event::ShardSegment {
                shard: 1,
                attempt: 2
            }
        );
    }

    #[test]
    fn field_order_is_immaterial_and_unknown_keys_are_tolerated() {
        let (event, ts) = parse_line(
            "{\"value\":9,\"future_field\":\"?\",\"kind\":\"counter\",\"name\":\"c\",\"ts_ms\":4}",
            1,
        )
        .unwrap();
        assert_eq!(
            event,
            Event::Counter {
                name: "c".into(),
                value: 9
            }
        );
        assert_eq!(ts, Some(4));
    }

    #[test]
    fn null_floats_come_back_as_nan() {
        let Event::Progress { eta_secs, .. } = one(
            "{\"kind\":\"progress\",\"done\":1,\"total\":2,\"jobs_per_sec\":0.5,\"eta_secs\":null}",
        ) else {
            panic!("not progress");
        };
        assert!(eta_secs.is_nan());
    }

    #[test]
    fn escapes_round_trip_including_surrogate_pairs() {
        let original = Event::Histogram {
            name: "we\"ird\\na\nme\t\u{1}\u{1F600}".into(),
            unit: "ms".into(),
            stats: Stats::default(),
        };
        let line = original.to_json_line(None);
        assert_eq!(one(&line), original);
        // A surrogate-pair escape decodes to the astral char too.
        let Event::Counter { name, .. } =
            one("{\"kind\":\"counter\",\"name\":\"\\ud83d\\ude00\",\"value\":1}")
        else {
            panic!("not counter");
        };
        assert_eq!(name, "\u{1F600}");
    }

    #[test]
    fn malformed_lines_become_typed_errors_with_line_numbers() {
        let text = "\n\
            {\"kind\":\"counter\",\"name\":\"ok\",\"value\":1}\n\
            {\"kind\":\"counter\",\"name\":\"torn\n\
            {\"kind\":\"mystery\",\"x\":1}\n\
            {\"kind\":\"counter\",\"value\":2}\n\
            {\"kind\":\"counter\",\"name\":\"dup\",\"name\":\"dup\",\"value\":3}\n\
            {\"kind\":\"counter\",\"name\":\"neg\",\"value\":-4}\n\
            {\"kind\":\"counter\",\"name\":\"ok2\",\"value\":5}\n";
        let trace = Trace::parse(text);
        assert_eq!(trace.lines.len(), 2);
        assert_eq!(trace.lines[0].line_no, 2);
        assert_eq!(trace.lines[1].line_no, 8);
        let lines: Vec<Option<usize>> = trace.errors.iter().map(|e| e.line()).collect();
        assert_eq!(lines, vec![Some(3), Some(4), Some(5), Some(6), Some(7)]);
        assert!(matches!(&trace.errors[0], ParseError::Syntax { .. }));
        assert!(matches!(
            &trace.errors[1],
            ParseError::UnknownKind { kind, .. } if kind == "mystery"
        ));
        assert!(matches!(
            &trace.errors[2],
            ParseError::MissingField { field: "name", .. }
        ));
        assert!(matches!(&trace.errors[3], ParseError::DuplicateKey { .. }));
        assert!(matches!(&trace.errors[4], ParseError::BadValue { .. }));
    }

    #[test]
    fn segment_markers_assign_provenance() {
        let text = "\
            {\"kind\":\"sched\",\"op\":\"claim\",\"shard\":0,\"attempt\":0}\n\
            {\"kind\":\"segment\",\"shard\":0,\"attempt\":0}\n\
            {\"kind\":\"counter\",\"name\":\"a\",\"value\":1}\n\
            {\"kind\":\"segment\",\"shard\":1,\"attempt\":2}\n\
            {\"kind\":\"counter\",\"name\":\"a\",\"value\":1}\n";
        let trace = Trace::parse(text);
        assert!(trace.errors.is_empty(), "{:?}", trace.errors);
        let provenance: Vec<Option<(usize, usize)>> =
            trace.lines.iter().map(|l| l.provenance).collect();
        assert_eq!(
            provenance,
            vec![None, Some((0, 0)), Some((0, 0)), Some((1, 2)), Some((1, 2))]
        );
    }
}
