//! The telemetry event model and its JSONL wire encoding.
//!
//! Events are plain values; sinks decide what to do with them. The
//! JSONL encoding is hand-written (one compact object per line) because
//! the vendored `serde_derive` subset cannot express an internally
//! varied event union with stable field names — and a hand-rolled
//! writer keeps the wire format an explicit, documented contract:
//!
//! ```json
//! {"kind":"span_start","id":2,"parent":1,"name":"batch","label":"jobs 0..32"}
//! {"kind":"span_end","id":2,"name":"batch","label":"jobs 0..32","micros":1523}
//! {"kind":"progress","done":32,"total":96,"jobs_per_sec":812.5,"eta_secs":0.078}
//! {"kind":"counter","name":"cells_solved","value":64}
//! {"kind":"histogram","name":"fat-uniform-16/dp_power","unit":"ms","count":8,"mean":1.2,"min":0.9,"max":2.1,"p50":1.1,"p90":2.0}
//! {"kind":"sched","op":"retry","shard":3,"attempt":1,"not_before_ms":1200}
//! {"kind":"segment","shard":3,"attempt":1}
//! ```
//!
//! Every line carries a `"kind"` discriminant first; the JSONL sink
//! appends a wall-clock `"ts_ms"` timestamp last. Floats render exactly
//! like the workspace's JSON layer (shortest round-trip, `.0` marker,
//! non-finite as `null`). The exact inverse of this writer lives in
//! [`crate::reader`] — any change here must keep the round-trip
//! property pinned by `crates/obs/tests/wire_roundtrip.rs`.

use crate::hist::Stats;

/// A supervision decision recorded by the fleet scheduler/coordinator.
///
/// Every [`Event::Sched`] line carries one of these plus the
/// `(shard, attempt)` it concerns, so a trace holds the full causal
/// story of a supervised run: who claimed what, which failures turned
/// into backoff-gated retries, where slots stole ahead, which zombies
/// were fenced off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedOp {
    /// The coordinator won the `(shard, attempt)` claim in the pool.
    Claim,
    /// A worker for the attempt was launched in a slot.
    Launch,
    /// The attempt failed; a retry was scheduled (with backoff — see
    /// the line's `not_before_ms`).
    Retry,
    /// The attempt was launched out of strict shard order because an
    /// earlier pending shard was backoff-gated (work stealing).
    Steal,
    /// The attempt's heartbeat went stale; the coordinator killed it
    /// and wrote it off.
    StaleKill,
    /// A superseded attempt's result arrived and was rejected by the
    /// attempt-generation fence.
    FenceReject,
    /// The attempt finished and its report was accepted as the shard's
    /// winning result.
    Done,
    /// The shard ran out of retry budget; the run will fail.
    Exhausted,
}

impl SchedOp {
    /// Every operation, in a stable order (wire-format docs and tests
    /// iterate this).
    pub const ALL: [SchedOp; 8] = [
        SchedOp::Claim,
        SchedOp::Launch,
        SchedOp::Retry,
        SchedOp::Steal,
        SchedOp::StaleKill,
        SchedOp::FenceReject,
        SchedOp::Done,
        SchedOp::Exhausted,
    ];

    /// The wire name of this operation (the `"op"` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedOp::Claim => "claim",
            SchedOp::Launch => "launch",
            SchedOp::Retry => "retry",
            SchedOp::Steal => "steal",
            SchedOp::StaleKill => "stale_kill",
            SchedOp::FenceReject => "fence_reject",
            SchedOp::Done => "done",
            SchedOp::Exhausted => "exhausted",
        }
    }

    /// Parses a wire name back into the operation.
    pub fn parse(s: &str) -> Option<SchedOp> {
        SchedOp::ALL.into_iter().find(|op| op.as_str() == s)
    }
}

impl std::fmt::Display for SchedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A span opened (`parent` is `None` for roots).
    SpanStart {
        /// Process-unique span id (monotonic, starts at 1).
        id: u64,
        /// Enclosing span id, if any.
        parent: Option<u64>,
        /// Structural name (`campaign`, `batch`, `solve`, `phase`, …).
        name: String,
        /// Free-form instance label (scenario, solver, job range, …).
        label: String,
    },
    /// A span closed; `micros` is its measured wall-clock duration.
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
        /// Structural name, repeated for grep-ability.
        name: String,
        /// Instance label, repeated for grep-ability.
        label: String,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
    /// Batch-granularity progress of a fleet run.
    Progress {
        /// Jobs completed so far.
        done: usize,
        /// Total jobs in the run.
        total: usize,
        /// Observed throughput (jobs per wall-clock second).
        jobs_per_sec: f64,
        /// Estimated seconds to completion at the observed throughput.
        eta_secs: f64,
    },
    /// Final value of a monotonic counter.
    Counter {
        /// Counter name (e.g. `cells_solved`).
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// Snapshot of a wall-clock histogram.
    Histogram {
        /// Histogram name (e.g. `scenario/solver`).
        name: String,
        /// Unit of the recorded values (e.g. `ms`).
        unit: String,
        /// Distribution snapshot (count, mean, min, max, p50, p90).
        stats: Stats,
    },
    /// A supervision decision of the fleet scheduler/coordinator.
    Sched {
        /// What happened.
        op: SchedOp,
        /// The shard it happened to.
        shard: usize,
        /// The attempt generation it happened to.
        attempt: usize,
        /// For [`SchedOp::Retry`]: the earliest clock reading
        /// (coordinator milliseconds) at which the retry may launch —
        /// the backoff gate. `None` for every other operation.
        not_before_ms: Option<u64>,
    },
    /// Provenance marker in an assembled multi-shard trace: every
    /// following span/progress/counter/histogram line belongs to
    /// `(shard, attempt)` until the next marker. This is what keeps
    /// per-process span ids unambiguous after concatenation — the
    /// reader keys spans by `(provenance, id)`.
    ShardSegment {
        /// Shard whose trace follows.
        shard: usize,
        /// Attempt generation whose trace follows.
        attempt: usize,
    },
}

impl Event {
    /// The `"kind"` discriminant this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::Progress { .. } => "progress",
            Event::Counter { .. } => "counter",
            Event::Histogram { .. } => "histogram",
            Event::Sched { .. } => "sched",
            Event::ShardSegment { .. } => "segment",
        }
    }

    /// Renders the event as one compact JSON object (no trailing
    /// newline). `ts_ms` — a Unix-epoch millisecond wall timestamp — is
    /// appended as the final field when provided.
    pub fn to_json_line(&self, ts_ms: Option<u64>) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            Event::SpanStart {
                id,
                parent,
                name,
                label,
            } => {
                push_u64(&mut out, "id", *id);
                match parent {
                    Some(p) => push_u64(&mut out, "parent", *p),
                    None => out.push_str(",\"parent\":null"),
                }
                push_str(&mut out, "name", name);
                push_str(&mut out, "label", label);
            }
            Event::SpanEnd {
                id,
                name,
                label,
                micros,
            } => {
                push_u64(&mut out, "id", *id);
                push_str(&mut out, "name", name);
                push_str(&mut out, "label", label);
                push_u64(&mut out, "micros", *micros);
            }
            Event::Progress {
                done,
                total,
                jobs_per_sec,
                eta_secs,
            } => {
                push_u64(&mut out, "done", *done as u64);
                push_u64(&mut out, "total", *total as u64);
                push_f64(&mut out, "jobs_per_sec", *jobs_per_sec);
                push_f64(&mut out, "eta_secs", *eta_secs);
            }
            Event::Counter { name, value } => {
                push_str(&mut out, "name", name);
                push_u64(&mut out, "value", *value);
            }
            Event::Histogram { name, unit, stats } => {
                push_str(&mut out, "name", name);
                push_str(&mut out, "unit", unit);
                push_u64(&mut out, "count", stats.count as u64);
                push_f64(&mut out, "mean", stats.mean);
                push_f64(&mut out, "min", stats.min);
                push_f64(&mut out, "max", stats.max);
                push_f64(&mut out, "p50", stats.p50);
                push_f64(&mut out, "p90", stats.p90);
                push_f64(&mut out, "p99", stats.p99);
            }
            Event::Sched {
                op,
                shard,
                attempt,
                not_before_ms,
            } => {
                push_str(&mut out, "op", op.as_str());
                push_u64(&mut out, "shard", *shard as u64);
                push_u64(&mut out, "attempt", *attempt as u64);
                if let Some(gate) = not_before_ms {
                    push_u64(&mut out, "not_before_ms", *gate);
                }
            }
            Event::ShardSegment { shard, attempt } => {
                push_u64(&mut out, "shard", *shard as u64);
                push_u64(&mut out, "attempt", *attempt as u64);
            }
        }
        if let Some(ts) = ts_ms {
            push_u64(&mut out, "ts_ms", ts);
        }
        out.push('}');
        out
    }
}

fn push_u64(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Shortest round-tripping decimal with a `.0` marker so floats
/// re-parse as floats; non-finite values render as `null` (matching the
/// workspace's JSON layer).
fn push_f64(out: &mut String, key: &str, value: f64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    if !value.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{value}");
    out.push_str(&s);
    if !(s.contains('.') || s.contains('e') || s.contains('E')) {
        out.push_str(".0");
    }
}

fn push_str(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_valid_compact_json() {
        let start = Event::SpanStart {
            id: 2,
            parent: Some(1),
            name: "solve".into(),
            label: "fat-uniform-16#3 dp_power".into(),
        };
        assert_eq!(
            start.to_json_line(None),
            "{\"kind\":\"span_start\",\"id\":2,\"parent\":1,\"name\":\"solve\",\
             \"label\":\"fat-uniform-16#3 dp_power\"}"
        );
        let root = Event::SpanStart {
            id: 1,
            parent: None,
            name: "campaign".into(),
            label: "jobs 0..96".into(),
        };
        assert!(root.to_json_line(Some(7)).contains("\"parent\":null"));
        assert!(root.to_json_line(Some(7)).ends_with(",\"ts_ms\":7}"));
    }

    #[test]
    fn float_rendering_matches_the_json_layer() {
        let p = Event::Progress {
            done: 3,
            total: 4,
            jobs_per_sec: 2.0,
            eta_secs: f64::INFINITY,
        };
        let line = p.to_json_line(None);
        assert_eq!(
            line,
            "{\"kind\":\"progress\",\"done\":3,\"total\":4,\
             \"jobs_per_sec\":2.0,\"eta_secs\":null}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::Histogram {
            name: "we\"ird\nname".into(),
            unit: "ms".into(),
            stats: Stats::default(),
        };
        let line = e.to_json_line(None);
        assert!(line.contains("we\\\"ird\\nname"), "{line}");
    }

    #[test]
    fn sched_lines_carry_op_shard_attempt_and_optional_gate() {
        let retry = Event::Sched {
            op: SchedOp::Retry,
            shard: 3,
            attempt: 1,
            not_before_ms: Some(1200),
        };
        assert_eq!(
            retry.to_json_line(None),
            "{\"kind\":\"sched\",\"op\":\"retry\",\"shard\":3,\"attempt\":1,\
             \"not_before_ms\":1200}"
        );
        let done = Event::Sched {
            op: SchedOp::Done,
            shard: 3,
            attempt: 1,
            not_before_ms: None,
        };
        assert_eq!(
            done.to_json_line(None),
            "{\"kind\":\"sched\",\"op\":\"done\",\"shard\":3,\"attempt\":1}"
        );
        let seg = Event::ShardSegment {
            shard: 7,
            attempt: 2,
        };
        assert_eq!(
            seg.to_json_line(None),
            "{\"kind\":\"segment\",\"shard\":7,\"attempt\":2}"
        );
    }

    #[test]
    fn sched_op_names_round_trip() {
        for op in SchedOp::ALL {
            assert_eq!(SchedOp::parse(op.as_str()), Some(op), "{op:?}");
        }
        assert_eq!(SchedOp::parse("nonsense"), None);
    }
}
