//! The JSONL wire contract, pinned from both ends.
//!
//! [`Event::to_json_line`] and [`Trace::parse`] are written as exact
//! inverses; this suite proves it two ways over randomized events:
//!
//! * **Structural round trip** — for events whose floats are all
//!   finite, `parse(emit(e)) == e` (and the `ts_ms` stamp survives).
//! * **Byte fixpoint** — for *every* event, including non-finite
//!   floats (which the writer renders as `null` and the reader maps
//!   back to NaN), re-emitting the parsed event reproduces the
//!   original line byte for byte: `emit(parse(emit(e))) == emit(e)`.
//!
//! A deterministic malformed-line corpus rides along: every damaged
//! line must come back as a typed [`ParseError`] carrying its
//! 1-indexed line number — never a panic, never a silent skip.

use proptest::prelude::*;
use replica_obs::{Event, ParseError, SchedOp, Stats, Trace};

/// Label/name corpus: empty, plain, and every escape class the writer
/// knows (quotes, backslashes, newlines, tabs, other control bytes,
/// multi-byte unicode).
const STRINGS: &[&str] = &[
    "",
    "solve",
    "fat/uniform-16#3 dp_power",
    "we\"ird\\na\"me",
    "line\nbreak\ttab\rret",
    "ctrl\u{1}bytes\u{1f}",
    "ünïcødé αβγ ✓",
    "emoji 🌲 forest",
];

/// Float corpus: zeros, negatives, subnormal-small, huge, and the
/// three non-finite values the wire renders as `null`.
const FLOATS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    2.5,
    -17.125,
    1e-300,
    f64::MAX,
    f64::MIN_POSITIVE,
    812.973,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

fn string(pick: usize) -> String {
    STRINGS[pick % STRINGS.len()].to_string()
}

fn float(pick: usize) -> f64 {
    FLOATS[pick % FLOATS.len()]
}

/// Builds one event from drawn primitives; `kind` selects the variant.
fn event(kind: usize, a: u64, b: u64, s1: usize, s2: usize, f1: usize, f2: usize) -> Event {
    match kind % 7 {
        0 => Event::SpanStart {
            id: a,
            parent: if b.is_multiple_of(3) { None } else { Some(b) },
            name: string(s1),
            label: string(s2),
        },
        1 => Event::SpanEnd {
            id: a,
            name: string(s1),
            label: string(s2),
            micros: b,
        },
        2 => Event::Progress {
            done: a as usize % 1_000_000,
            total: b as usize % 1_000_000,
            jobs_per_sec: float(f1),
            eta_secs: float(f2),
        },
        3 => Event::Counter {
            name: string(s1),
            value: a,
        },
        4 => Event::Histogram {
            name: string(s1),
            unit: string(s2),
            stats: Stats {
                count: b as usize % 1_000_000,
                mean: float(f1),
                min: float(f2),
                max: float(f1.wrapping_add(1)),
                p50: float(f2.wrapping_add(2)),
                p90: float(f1.wrapping_add(3)),
                p99: float(f2.wrapping_add(4)),
            },
        },
        5 => Event::Sched {
            op: SchedOp::ALL[a as usize % SchedOp::ALL.len()],
            shard: a as usize % 64,
            attempt: b as usize % 8,
            not_before_ms: if b.is_multiple_of(2) { Some(a) } else { None },
        },
        _ => Event::ShardSegment {
            shard: a as usize % 64,
            attempt: b as usize % 8,
        },
    }
}

/// Whether every float the event carries is finite — the precondition
/// for structural (value-level) round-trip identity; NaN breaks `==`
/// by design, which is what the byte-fixpoint property covers.
fn all_finite(event: &Event) -> bool {
    match event {
        Event::Progress {
            jobs_per_sec,
            eta_secs,
            ..
        } => jobs_per_sec.is_finite() && eta_secs.is_finite(),
        Event::Histogram { stats, .. } => [
            stats.mean, stats.min, stats.max, stats.p50, stats.p90, stats.p99,
        ]
        .iter()
        .all(|v| v.is_finite()),
        _ => true,
    }
}

fn parse_one(line: &str) -> Result<(Event, Option<u64>), String> {
    let trace = Trace::parse(line);
    if let Some(error) = trace.errors.first() {
        return Err(format!("unexpected parse error for {line:?}: {error}"));
    }
    match trace.lines.as_slice() {
        [only] => Ok((only.event.clone(), only.ts_ms)),
        other => Err(format!("expected 1 line, got {}", other.len())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emitted_lines_parse_back(
        kind in 0usize..7,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        s1 in 0usize..64,
        s2 in 0usize..64,
        f1 in 0usize..64,
        f2 in 0usize..64,
        ts in 0u64..u64::MAX,
    ) {
        let original = event(kind, a, b, s1, s2, f1, f2);

        // Byte fixpoint, every event: emit → parse → emit is identity
        // on the wire (non-finite floats become null, parse to NaN,
        // and render null again).
        let bare = original.to_json_line(None);
        let (parsed, no_ts) = parse_one(&bare)?;
        prop_assert_eq!(&no_ts, &None);
        prop_assert_eq!(parsed.to_json_line(None), bare.clone(), "byte fixpoint broke");

        // Structural round trip for finite events, with the timestamp.
        let stamped = original.to_json_line(Some(ts));
        let (reparsed, ts_back) = parse_one(&stamped)?;
        prop_assert_eq!(ts_back, Some(ts), "ts_ms must survive");
        if all_finite(&original) {
            prop_assert_eq!(reparsed, original, "structural identity broke for {}", bare);
        } else {
            prop_assert_eq!(reparsed.to_json_line(Some(ts)), stamped);
        }
    }
}

/// Damaged lines come back as typed errors with 1-indexed line
/// numbers; the undamaged neighbours still parse. The reader never
/// panics and never silently drops.
#[test]
fn malformed_corpus_yields_typed_errors_with_line_numbers() {
    let text = concat!(
        "{\"kind\":\"counter\",\"name\":\"ok\",\"value\":1}\n",
        "{\"kind\":\"counter\",\"name\":\"torn\",\"val\n", // 2: torn mid-write
        "{\"kind\":\"warp_drive\",\"x\":1}\n",             // 3: unknown kind
        "{\"kind\":\"counter\",\"name\":\"dup\",\"value\":1,\"value\":2}\n", // 4: duplicate key
        "{\"kind\":\"counter\",\"value\":2}\n",            // 5: missing field
        "{\"kind\":\"counter\",\"name\":\"bad\",\"value\":\"NaN\"}\n", // 6: wrong type
        "not json at all\n",                               // 7: syntax
        "{\"kind\":\"segment\",\"shard\":1,\"attempt\":0}\n", // 8: fine
        "{\"kind\":\"counter\",\"name\":\"also ok\",\"value\":3}\n",
    );
    let trace = Trace::parse(text);
    assert_eq!(trace.lines.len(), 3, "good lines all parse");
    assert_eq!(trace.errors.len(), 6, "damaged lines all report");

    let lines: Vec<usize> = trace.errors.iter().filter_map(ParseError::line).collect();
    assert_eq!(lines, vec![2, 3, 4, 5, 6, 7], "1-indexed, in order");
    assert!(
        trace
            .errors
            .iter()
            .any(|e| matches!(e, ParseError::UnknownKind { kind, .. } if kind == "warp_drive")),
        "unknown kinds carry the kind name"
    );
    assert!(trace
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::DuplicateKey { key, .. } if key == "value")));
    assert!(trace
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::MissingField { field: "name", .. })));

    // Provenance still threads through around the damage.
    let last = trace.lines.last().unwrap();
    assert_eq!(last.provenance, Some((1, 0)));
}
