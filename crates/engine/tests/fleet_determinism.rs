//! Fleet reproducibility: a seeded sweep across the scenario families —
//! all five topology families × every demand pattern, churn included —
//! must produce a byte-identical deterministic digest across repeated
//! runs, across worker-thread counts and across streaming batch sizes,
//! including the randomized annealing solver (whose seeds the fleet
//! derives per instance).

use replica_engine::{extended_families, Fleet, FleetConfig, Registry, SolveOptions};

fn digest(registry: &Registry, threads: Option<usize>, batch_jobs: usize, seed: u64) -> String {
    let scenarios = extended_families(16);
    assert_eq!(scenarios.len(), 35, "5 topologies × 7 demand patterns");
    let jobs = Fleet::jobs_from_scenarios(&scenarios, seed, 2);
    let config = FleetConfig {
        solvers: vec![
            "greedy".into(),
            "greedy_power".into(),
            "dp_power".into(),
            "heur_annealing".into(),
        ],
        options: SolveOptions::default(),
        seed,
        reference: Some("dp_power".into()),
        threads,
        batch_jobs,
    };
    Fleet::new(registry, config).run(&jobs).digest()
}

#[test]
fn seeded_fleet_sweep_is_byte_identical_across_runs_and_thread_counts() {
    let registry = Registry::with_all();
    let base = digest(&registry, None, 64, 0xF1EE7);

    // Same seed, repeated: identical.
    assert_eq!(base, digest(&registry, None, 64, 0xF1EE7));
    // Forced serial and odd parallel widths: identical.
    assert_eq!(base, digest(&registry, Some(1), 64, 0xF1EE7));
    assert_eq!(base, digest(&registry, Some(3), 64, 0xF1EE7));
    assert_eq!(base, digest(&registry, Some(13), 64, 0xF1EE7));
    // Streaming batch size is a memory knob, not a semantic one.
    assert_eq!(base, digest(&registry, None, 1, 0xF1EE7));
    assert_eq!(base, digest(&registry, Some(5), 3, 0xF1EE7));
    // A different seed must actually change the fleet.
    assert_ne!(base, digest(&registry, None, 64, 0xBEEF));

    // The digest covers every (scenario, solver) pair.
    for topology in ["fat", "high", "binary", "caterpillar", "star"] {
        assert!(base.contains(topology), "{topology} missing from digest");
    }
    for demand in [
        "uniform",
        "skewed",
        "flashcrowd",
        "drifting",
        "walkdrift",
        "quietchurn",
        "subtreemix",
    ] {
        assert!(base.contains(demand), "{demand} missing from digest");
    }
}

#[test]
fn exact_dp_dominates_every_other_solver_across_the_sweep() {
    let registry = Registry::with_all();
    let scenarios = extended_families(16);
    let jobs = Fleet::jobs_from_scenarios(&scenarios, 7, 2);
    let config = FleetConfig {
        solvers: vec![
            "greedy_power".into(),
            "heur_power_greedy".into(),
            "dp_power".into(),
        ],
        reference: Some("dp_power".into()),
        ..Default::default()
    };
    let report = Fleet::new(&registry, config).run(&jobs);
    assert_eq!(report.summaries.len(), scenarios.len() * 3);
    assert_eq!(report.cell_count, jobs.len() * 3);
    for summary in &report.summaries {
        assert!(
            summary.solved == 2,
            "{}/{}: every instance of the sweep is feasible (solved {})",
            summary.scenario,
            summary.solver,
            summary.solved
        );
        if let Some(gap) = summary.power_gap_vs_ref {
            assert!(
                gap >= 1.0 - 1e-9,
                "{}/{}: mean power ratio {gap} beats the exact DP",
                summary.scenario,
                summary.solver
            );
        }
    }
}
