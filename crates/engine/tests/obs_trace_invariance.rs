//! The out-of-band invariant, pinned: telemetry never changes what a
//! fleet computes.
//!
//! For randomized small campaigns, the same campaign is run three
//! ways — untraced ([`Obs::noop`]), traced into a [`MemorySink`] at
//! full `Solve` verbosity, and traced into a real [`JsonlSink`] file
//! at `Progress` verbosity — and every deterministic artifact must be
//! **byte-identical** across all three: the FNV cell checksum, the
//! digest, and the `json-det` rendering. The traced runs must also
//! actually emit (a sink that never fires would make the invariance
//! vacuous).

use proptest::prelude::*;
use replica_engine::obs::{Event, JsonlSink, MemorySink, Obs, Verbosity};
use replica_engine::output::{json, render, OutputFormat};
use replica_engine::{Campaign, Fleet, FleetReport, Registry};
use std::sync::Arc;

/// A small campaign exercising churn scenarios and a randomized solver
/// (annealing's per-instance seeding is the most fragile thing a
/// telemetry side-channel could perturb).
fn campaign(seed: u64, solver_pick: usize, batch_jobs: usize) -> Campaign {
    let mut campaign = Campaign::from_set("extended", 12, 2, seed).unwrap();
    campaign
        .scenarios
        .retain(|s| s.name.starts_with("high/uniform") || s.name.starts_with("star/quietchurn"));
    campaign.solvers = match solver_pick % 3 {
        0 => vec!["dp_power".into(), "greedy_power".into()],
        1 => vec!["dp_power_full".into(), "heur_annealing".into()],
        _ => vec![
            "dp_power".into(),
            "greedy_power".into(),
            "heur_annealing".into(),
        ],
    };
    campaign.batch_jobs = batch_jobs;
    campaign
}

fn run_with(campaign: &Campaign, obs: &Obs) -> FleetReport {
    let registry = Registry::with_all();
    let fleet = Fleet::try_new(&registry, campaign.fleet_config()).unwrap();
    fleet.run_space_traced(&campaign.space(), obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn traced_runs_are_byte_identical_to_untraced(
        seed in 0u64..1_000,
        solver_pick in 0usize..3,
        batch_jobs in 1usize..5,
    ) {
        let campaign = campaign(seed, solver_pick, batch_jobs);
        let baseline = run_with(&campaign, &Obs::noop());

        // Full solve-level detail into memory.
        let memory = Arc::new(MemorySink::new());
        let traced = run_with(&campaign, &Obs::new(memory.clone(), Verbosity::Solve));

        // Progress-level detail into an actual JSONL file.
        let dir = std::env::temp_dir().join(format!("obs-invariance-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{seed}-{solver_pick}-{batch_jobs}.jsonl"));
        let jsonl = Obs::new(Arc::new(JsonlSink::create(&path).unwrap()), Verbosity::Progress);
        let jsonl_traced = run_with(&campaign, &jsonl);

        // Every deterministic artifact, byte for byte.
        for report in [&traced, &jsonl_traced] {
            prop_assert_eq!(report.cell_checksum, baseline.cell_checksum);
            prop_assert_eq!(report.cell_count, baseline.cell_count);
            prop_assert_eq!(report.digest(), baseline.digest());
            prop_assert_eq!(
                json(report, false),
                json(&baseline, false),
                "json-det must be byte-identical under tracing"
            );
            prop_assert_eq!(
                render(report, OutputFormat::TableDeterministic),
                render(&baseline, OutputFormat::TableDeterministic)
            );
        }

        // The invariance is non-vacuous: the traced runs really traced.
        let events = memory.take();
        prop_assert!(
            events.iter().any(|e| matches!(e, Event::SpanStart { name, .. } if name == "solve")),
            "solve verbosity must emit per-solve spans"
        );
        prop_assert!(events.iter().any(|e| matches!(e, Event::Progress { .. })));
        prop_assert!(events.iter().any(|e| matches!(e, Event::Histogram { .. })));
        let trace_text = std::fs::read_to_string(&path).unwrap();
        prop_assert!(!trace_text.is_empty(), "JSONL sink must have written lines");
        prop_assert!(trace_text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }
}

/// The DP phase sub-spans ride the same invariant: `solve()` and
/// `solve_traced()` are one code path, so their outcomes cannot differ
/// — but pin it anyway, through the public solver API.
#[test]
fn phase_spans_do_not_change_solver_outcomes() {
    use replica_engine::{Scenario, SolveOptions, Topology};

    let registry = Registry::with_all();
    let scenario = Scenario::new(Topology::High, replica_engine::Demand::Skewed, 14);
    let instance = scenario.instance(7, 0);
    let options = SolveOptions::default();
    for name in ["dp_power", "dp_power_full"] {
        let solver = registry.get(name).unwrap();
        let plain = solver.solve(&instance, &options).unwrap();

        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone(), Verbosity::Solve);
        let span = obs.span("solve", name);
        let traced = solver.solve_traced(&instance, &options, &span).unwrap();
        drop(span);

        assert_eq!(plain.cost.to_bits(), traced.cost.to_bits(), "{name}");
        assert_eq!(plain.power.to_bits(), traced.power.to_bits(), "{name}");
        assert_eq!(plain.servers, traced.servers, "{name}");
        assert_eq!(plain.placement, traced.placement, "{name}");
        let events = sink.take();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, label, .. } if name == "phase" => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(phases, ["dp_table", "reconstruct"], "{name}");
    }
}
