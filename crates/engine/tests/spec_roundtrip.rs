//! The campaign-spec wire contract, property-tested:
//!
//! * JSON serialize → deserialize is the **identity** for arbitrary
//!   valid specs — field for field (`PartialEq`) and byte for byte
//!   (re-serialization), named-set and inline selections alike;
//! * a round-tripped spec validates to a campaign **equal** to the
//!   original's (same fingerprint, same resolved fields);
//! * running a round-tripped spec produces a **byte-identical fleet
//!   digest** — cell count and FNV cell checksum included — to running
//!   the original, which is the property the `fleetd --spec` path and
//!   the legacy-flag path both lean on.

use proptest::prelude::*;
use replica_engine::{
    extended_families, CampaignSpec, Fleet, OutputFormat, Registry, Scenario, ScenarioSet,
};

/// Deterministically derives an arbitrary valid spec from drawn
/// integers. `selection`: 0/1/2 = named standard/churn/extended,
/// 3 = inline scenarios sampled from the extended pool.
#[allow(clippy::too_many_arguments)]
fn spec_from(
    selection: usize,
    nodes: usize,
    offset: usize,
    count: usize,
    solver_mask: usize,
    knob_mask: usize,
    seed: u64,
    batch: usize,
) -> CampaignSpec {
    let mut builder = CampaignSpec::builder();
    builder = match selection {
        0 => builder.scenario_set(ScenarioSet::Standard, nodes),
        1 => builder.scenario_set(ScenarioSet::Churn, nodes),
        2 => builder.scenario_set(ScenarioSet::Extended, nodes),
        _ => {
            let pool = extended_families(nodes);
            let picks: Vec<Scenario> = (0..1 + offset % 3)
                .map(|i| pool[(offset + i * 11) % pool.len()].clone())
                .collect();
            builder.scenarios(picks)
        }
    };
    // A non-empty, duplicate-free lineup drawn from the full registry.
    let pool = [
        "dp_power",
        "greedy_power",
        "heur_power_greedy",
        "greedy",
        "dp_mincost_nopre",
    ];
    let mut solvers: Vec<&str> = pool
        .iter()
        .enumerate()
        .filter(|(i, _)| solver_mask >> i & 1 == 1)
        .map(|(_, s)| *s)
        .collect();
    if solvers.is_empty() {
        solvers.push(pool[solver_mask % pool.len()]);
    }
    if knob_mask & 1 == 1 {
        builder = builder.reference(solvers[0]);
    }
    if knob_mask & 2 == 2 {
        builder = builder.cost_bound((seed % 100) as f64);
    }
    if knob_mask & 4 == 4 {
        builder = builder.budget_grid((1..=3).map(|i| (i * (1 + seed % 20)) as f64));
    }
    if knob_mask & 8 == 8 {
        builder = builder.threads(1 + knob_mask % 4);
    }
    builder = builder.output(OutputFormat::ALL[knob_mask % OutputFormat::ALL.len()]);
    builder
        .solvers(solvers)
        .instances_per_scenario(count)
        .seed(seed)
        .batch_jobs(batch)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// serialize → deserialize is the identity, and the round-tripped
    /// spec resolves to an equal campaign.
    #[test]
    fn json_round_trip_is_identity(
        selection in 0usize..4,
        nodes in 8usize..14,
        offset in 0usize..35,
        count in 1usize..4,
        solver_mask in 0usize..32,
        knob_mask in 0usize..16,
        seed in 0u64..1_000_000,
        batch in 1usize..80,
    ) {
        let spec = spec_from(selection, nodes, offset, count, solver_mask, knob_mask, seed, batch);
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        prop_assert_eq!(&back, &spec, "deserialization must reproduce every field");
        prop_assert_eq!(back.to_json(), json, "re-serialization must reproduce the bytes");

        let registry = Registry::with_all();
        let campaign = spec.validate(&registry).unwrap();
        let again = back.validate(&registry).unwrap();
        prop_assert_eq!(&again, &campaign, "round-tripped specs resolve identically");
        prop_assert_eq!(again.fingerprint(), campaign.fingerprint());

        // And the resolved campaign's own spec() is a fixed point.
        let reresolved = campaign.spec().validate(&registry).unwrap();
        prop_assert_eq!(&reresolved, &campaign);
    }
}

proptest! {
    // Each case runs two small fleets; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A round-tripped spec produces a byte-identical fleet digest
    /// (aggregates + cell_count + FNV cell checksum) to the original.
    #[test]
    fn round_tripped_spec_runs_to_an_identical_digest(
        offset in 0usize..35,
        count in 1usize..3,
        seed in 0u64..10_000,
        batch in 1usize..8,
        solver_mask in 1usize..4,
    ) {
        // Inline selection keeps the job space small (1–2 scenarios at
        // 8 nodes): the digest comparison is about the wire format, not
        // fleet scale.
        let spec = spec_from(3, 8, offset, count, solver_mask, 1, seed, batch);
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();

        let registry = Registry::with_all();
        let original = spec.validate(&registry).unwrap();
        let round_tripped = back.validate(&registry).unwrap();

        let run = |campaign: &replica_engine::Campaign| {
            let fleet = Fleet::try_new(&registry, campaign.fleet_config()).unwrap();
            fleet.run_space(&campaign.space())
        };
        let a = run(&original);
        let b = run(&round_tripped);
        prop_assert_eq!(a.cell_count, b.cell_count);
        prop_assert_eq!(a.cell_checksum, b.cell_checksum, "FNV checksum must survive the wire");
        prop_assert_eq!(a.digest(), b.digest(), "full digest must be byte-identical");
        prop_assert_eq!(a.table_deterministic(), b.table_deterministic());
    }
}
