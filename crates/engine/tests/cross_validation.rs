//! Registry-wide cross-validation against the exhaustive oracle.
//!
//! Every registered solver is run, through the uniform engine interface,
//! on 60 small random instances (30 two-mode, 30 single-mode; half with
//! pre-existing servers) and judged against the enumeration oracle:
//!
//! * exact `MinPower` solvers must match the oracle optimum exactly, at
//!   an unconstrained budget *and* at a tight budget read off the
//!   oracle's own Pareto front;
//! * the exact `MinCost` DP must match the oracle cost optimum;
//! * the count-optimal solvers (`greedy`, `dp_mincost_nopre`) must match
//!   the oracle's minimum server count;
//! * inexact solvers must return feasible placements that never beat the
//!   oracle optimum (soundness of the upper bound).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use replica_core::exhaustive;
use replica_engine::{Registry, SolveOptions};
use replica_model::{CostModel, Instance, ModeSet, PowerModel, PreExisting};
use replica_tree::{generate, GeneratorConfig};

/// A small random instance the oracle can enumerate.
fn small_instance(seed: u64, two_mode: bool) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = rng.random_range(3usize..=8);
    let config = GeneratorConfig {
        internal_nodes: nodes,
        children_range: (1, 3),
        client_probability: 0.8,
        requests_range: if two_mode { (1, 3) } else { (1, 4) },
    };
    let tree = generate::random_tree(&config, &mut rng);
    let modes = if two_mode {
        ModeSet::new(vec![3, 6]).unwrap()
    } else {
        ModeSet::new(vec![5]).unwrap()
    };
    let pre_count = if seed.is_multiple_of(2) {
        2.min(nodes)
    } else {
        0
    };
    let pre = generate::random_pre_existing(&tree, pre_count, &mut rng);
    let pre_mode = rng.random_range(0..modes.count());
    // Two-mode instances use the paper's Eq. 4 cost matrices; single-mode
    // ones use the classical Eq. 2 scalars (the setting `dp_mincost` is
    // exact for).
    let cost = if two_mode {
        CostModel::uniform(2, 0.1, 0.01, 0.001)
    } else {
        CostModel::simple(0.1, 0.01)
    };
    Instance::builder(tree)
        .pre_existing(PreExisting::at_mode(pre, pre_mode))
        .cost(cost)
        .power(PowerModel::new(1.0, 2.0))
        .modes(modes)
        .build()
        .unwrap()
}

/// Oracle facts about one instance.
struct Oracle {
    min_servers: u64,
    min_cost: f64,
    /// `(bound, optimal power under bound)` for ∞ and a tight bound.
    power_by_bound: Vec<(f64, f64)>,
}

fn oracle(instance: &Instance) -> Option<Oracle> {
    let candidates = exhaustive::enumerate(instance);
    if candidates.is_empty() {
        return None;
    }
    let min_servers = candidates.iter().map(|c| c.servers).min().unwrap();
    let min_cost = candidates
        .iter()
        .map(|c| c.cost)
        .fold(f64::INFINITY, f64::min);
    // A tight budget: halfway between the cheapest solution and the cost
    // of the power-optimal one (stresses the bounded-cost filtering).
    let front = exhaustive::pareto(instance);
    let tight = match (front.first(), front.last()) {
        (Some(&(c_min, _)), Some(&(c_opt, _))) => (c_min + c_opt) / 2.0,
        _ => f64::INFINITY,
    };
    let power_by_bound = [tight, f64::INFINITY]
        .into_iter()
        .filter_map(|bound| {
            exhaustive::min_power_bounded(instance, bound)
                .ok()
                .map(|c| (bound, c.power))
        })
        .collect();
    Some(Oracle {
        min_servers,
        min_cost,
        power_by_bound,
    })
}

#[test]
fn all_registered_solvers_agree_with_the_oracle_on_small_instances() {
    let registry = Registry::with_all();
    let mut checked_instances = 0usize;
    let mut per_solver_checks = vec![0usize; registry.len()];

    for seed in 0..60u64 {
        let instance = small_instance(seed, seed < 30);
        let Some(oracle) = oracle(&instance) else {
            continue; // no feasible placement at all: nothing to compare
        };
        checked_instances += 1;

        for (solver_idx, solver) in registry.iter().enumerate() {
            if !solver.supports(&instance) {
                continue;
            }
            for &(bound, oracle_power) in &oracle.power_by_bound {
                let options = SolveOptions {
                    cost_bound: bound,
                    seed: seed ^ 0xA5A5,
                };
                let outcome = match solver.solve(&instance, &options) {
                    Ok(outcome) => outcome,
                    Err(_) => {
                        // Inexact solvers may miss tight budgets; exact
                        // ones must not (the oracle found a solution).
                        assert!(
                            !(solver.capabilities().exact && solver.capabilities().cost_bound),
                            "seed {seed}: exact solver {} failed at bound {bound}",
                            solver.name()
                        );
                        continue;
                    }
                };
                per_solver_checks[solver_idx] += 1;
                let caps = solver.capabilities();
                let name = solver.name();

                // Soundness for everyone: a returned outcome is feasible
                // (the engine re-evaluated it) and never beats the oracle.
                assert!(
                    outcome.power >= oracle_power - 1e-9,
                    "seed {seed} bound {bound}: {name} claims power {} below the optimum {}",
                    outcome.power,
                    oracle_power
                );
                if caps.cost_bound {
                    assert!(
                        outcome.cost <= bound + 1e-6,
                        "seed {seed}: {name} exceeded its budget"
                    );
                }

                // Exactness where claimed.
                if caps.exact && caps.cost_bound {
                    assert!(
                        (outcome.power - oracle_power).abs() < 1e-9,
                        "seed {seed} bound {bound}: {name} power {} ≠ oracle {}",
                        outcome.power,
                        oracle_power
                    );
                }
                if name == "dp_mincost" && bound.is_infinite() {
                    assert!(
                        (outcome.cost - oracle.min_cost).abs() < 1e-9,
                        "seed {seed}: dp_mincost cost {} ≠ oracle {}",
                        outcome.cost,
                        oracle.min_cost
                    );
                }
                if matches!(name, "greedy" | "dp_mincost_nopre") && bound.is_infinite() {
                    assert_eq!(
                        outcome.servers, oracle.min_servers,
                        "seed {seed}: {name} server count is not minimal"
                    );
                }
            }
        }
    }

    assert!(
        checked_instances >= 50,
        "only {checked_instances} feasible instances generated; need ≥ 50"
    );
    for (solver_idx, solver) in registry.iter().enumerate() {
        assert!(
            per_solver_checks[solver_idx] >= 50,
            "{} was only checked {} times",
            solver.name(),
            per_solver_checks[solver_idx]
        );
    }
}

#[test]
fn exact_power_solvers_agree_pairwise_on_larger_trees() {
    // Beyond the oracle's reach, the two exact DPs must still agree with
    // each other — through the uniform interface.
    let registry = Registry::with_all();
    for seed in 100..106u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::random_tree(&GeneratorConfig::paper_power(30), &mut rng);
        let pre = generate::random_pre_existing(&tree, 4, &mut rng);
        let modes = ModeSet::new(vec![5, 10]).unwrap();
        let power = PowerModel::paper_experiment3(&modes);
        let instance = Instance::builder(tree)
            .pre_existing(PreExisting::at_mode(pre, 1))
            .cost(CostModel::uniform(2, 0.1, 0.01, 0.001))
            .power(power)
            .modes(modes)
            .build()
            .unwrap();
        for bound in [25.0, 40.0, f64::INFINITY] {
            let options = SolveOptions::with_cost_bound(bound);
            let full = registry.solve("dp_power_full", &instance, &options);
            let pruned = registry.solve("dp_power", &instance, &options);
            match (full, pruned) {
                (Ok(a), Ok(b)) => assert!(
                    (a.power - b.power).abs() < 1e-6,
                    "seed {seed} bound {bound}: {} vs {}",
                    a.power,
                    b.power
                ),
                (Err(_), Err(_)) => {}
                other => panic!("seed {seed} bound {bound}: feasibility disagreement {other:?}"),
            }
        }
    }
}
