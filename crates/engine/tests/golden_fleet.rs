//! Golden snapshots of the deterministic fleet fingerprint.
//!
//! Two small fixed campaigns — one paper-aligned, one churn-family — are
//! pinned down to the exact `cell_count`, FNV `cell_checksum` and the
//! full deterministic table rendering. Every stage of the pipeline feeds
//! these bytes: scenario/instance generation (trees, demand patterns,
//! pre-existing draws), per-job solver seeding (global job index), every
//! solver's arithmetic, and the streaming aggregation (P² sketches
//! included). A future refactor of job generation or aggregation that
//! silently shifts any of it fails here first — with the full table diff
//! in the assertion message.
//!
//! The values were produced by the lazy `JobSpace` path and
//! cross-checked against the eager path (which the equivalence suite
//! keeps equal); both paths must keep matching these bytes.

use replica_engine::{Demand, Fleet, FleetConfig, Registry, Scenario, ScenarioSpace, Topology};

/// The deterministic table with per-line trailing alignment spaces
/// stripped (the golden literals below would be unreadable — and
/// fragile under editors — with invisible trailing whitespace; the FNV
/// cell checksum already pins the exact bytes).
fn trimmed_table(report: &replica_engine::FleetReport) -> String {
    report
        .table_deterministic()
        .lines()
        .map(str::trim_end)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Runs `scenarios × 3` instances with `solvers` at `seed`, lazily.
fn report(scenarios: &[Scenario], solvers: &[&str], seed: u64) -> replica_engine::FleetReport {
    let registry = Registry::with_all();
    let config = FleetConfig {
        solvers: solvers.iter().map(|s| s.to_string()).collect(),
        seed,
        ..Default::default()
    };
    let fleet = Fleet::new(&registry, config);
    fleet.run_space(&ScenarioSpace::new(scenarios, seed, 3))
}

#[test]
fn paper_aligned_campaign_matches_the_golden_snapshot() {
    let scenarios = vec![
        Scenario::new(Topology::Fat, Demand::Uniform, 12),
        Scenario::new(Topology::High, Demand::Drifting, 12),
    ];
    let report = report(
        &scenarios,
        &["dp_power", "greedy_power", "heur_power_greedy"],
        0xA11CE,
    );
    assert_eq!(
        report.cell_count, 18,
        "2 scenarios × 3 instances × 3 solvers"
    );
    assert_eq!(
        report.cell_checksum, 0x81a6_258d_4d15_5fd1,
        "cell checksum drifted: job generation, seeding or a solver \
         changed its deterministic output (got {:016x})",
        report.cell_checksum
    );
    let golden = "\
scenario           solver             solved  fail  power_mean  power_p90  cost_mean  servers  gap_vs_ref
-----------------------------------------------------------------------------------------------------------
fat/uniform/12n    dp_power           3       0     1375.00     1375.00    10.901     10.0     1.0000
fat/uniform/12n    greedy_power       3       0     1375.00     1375.00    10.901     10.0     1.0000
fat/uniform/12n    heur_power_greedy  3       0     1375.00     1375.00    10.901     10.0     1.0000
high/drifting/12n  dp_power           3       0     6195.83     6487.50    9.801      9.0      1.0000
high/drifting/12n  greedy_power       3       0     7762.50     8100.00    8.371      7.7      1.2533
high/drifting/12n  heur_power_greedy  3       0     6241.67     6625.00    10.204     9.3      1.0071
";
    assert_eq!(
        trimmed_table(&report),
        golden,
        "deterministic table drifted from the golden snapshot"
    );
}

#[test]
fn churn_campaign_matches_the_golden_snapshot() {
    let scenarios = vec![
        Scenario::new(Topology::Binary, Demand::QuietChurn, 12),
        Scenario::new(Topology::Caterpillar, Demand::WalkDrift, 12),
    ];
    let report = report(&scenarios, &["dp_power", "greedy_power"], 0xC0FFEE);
    assert_eq!(
        report.cell_count, 12,
        "2 scenarios × 3 instances × 2 solvers"
    );
    assert_eq!(
        report.cell_checksum, 0xb48f_dda7_25af_081c,
        "cell checksum drifted: job generation, seeding or a solver \
         changed its deterministic output (got {:016x})",
        report.cell_checksum
    );
    let golden = "\
scenario                   solver        solved  fail  power_mean  power_p90  cost_mean  servers  gap_vs_ref
--------------------------------------------------------------------------------------------------------------
binary/quietchurn/12n      dp_power      3       0     1008.33     1100.00    8.004      7.3      1.0000
binary/quietchurn/12n      greedy_power  3       0     1008.33     1100.00    8.040      7.3      1.0000
caterpillar/walkdrift/12n  dp_power      3       0     841.67      1562.50    4.337      4.0      1.0000
caterpillar/walkdrift/12n  greedy_power  3       0     1333.33     3037.50    3.640      3.3      1.3147
";
    assert_eq!(
        trimmed_table(&report),
        golden,
        "deterministic table drifted from the golden snapshot"
    );
}
