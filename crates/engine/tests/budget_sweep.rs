//! The budget-sweep API's contract, across every sweep-capable solver:
//!
//! * the frontier's achievable power is non-increasing in the budget
//!   (property-tested over random instances and budget pairs);
//! * the amortized frontier answers every budget exactly like independent
//!   per-budget solves through the plain [`Solver`] interface;
//! * the generic fallback adapter agrees with the amortized path on the
//!   solvers that have both.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use replica_engine::{Registry, SolveOptions};
use replica_model::{CostModel, Instance, ModeSet, PowerModel, PreExisting};
use replica_tree::{generate, GeneratorConfig};

/// The registry solvers advertising an amortized sweep.
const SWEEPERS: [&str; 4] = ["dp_power", "dp_power_full", "greedy_power", "exhaustive"];

/// A small random two-mode instance (oracle-enumerable).
fn small_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = rng.random_range(3usize..=8);
    let config = GeneratorConfig {
        internal_nodes: nodes,
        children_range: (1, 3),
        client_probability: 0.9,
        requests_range: (1, 4),
    };
    let tree = generate::random_tree(&config, &mut rng);
    let pre_count = if seed.is_multiple_of(2) {
        2.min(nodes)
    } else {
        0
    };
    let pre = generate::random_pre_existing(&tree, pre_count, &mut rng);
    Instance::builder(tree)
        .pre_existing(PreExisting::at_mode(pre, 1))
        .cost(CostModel::uniform(2, 0.1, 0.01, 0.001))
        .power(PowerModel::new(1.0, 2.0))
        .modes(ModeSet::new(vec![3, 6]).unwrap())
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frontier_power_is_non_increasing_in_the_budget(
        seed in 0u64..10_000,
        lo in 0.0f64..20.0,
        extra in 0.0f64..20.0,
    ) {
        let registry = Registry::with_all();
        let instance = small_instance(seed);
        let options = SolveOptions::default();
        for name in SWEEPERS {
            let Ok(sweep) = registry.sweep(name, &instance, &options, &[]) else {
                continue; // infeasible instance: nothing to check
            };
            // A looser budget can never force more power...
            let tight = sweep.frontier.best_within(lo).map(|p| p.power);
            let loose = sweep.frontier.best_within(lo + extra).map(|p| p.power);
            match (tight, loose) {
                (Some(t), Some(l)) => prop_assert!(
                    l <= t + 1e-12,
                    "{name}: budget {lo} → {t}, budget {} → {l}",
                    lo + extra
                ),
                // ...and whatever a tight budget admits, a loose one does.
                (Some(_), None) => prop_assert!(false, "{name}: feasibility lost at a looser budget"),
                _ => {}
            }
            // The front itself is sorted: costs strictly up, powers strictly down.
            for pair in sweep.frontier.points().windows(2) {
                prop_assert!(pair[0].cost < pair[1].cost, "{name}: costs must increase");
                prop_assert!(pair[0].power > pair[1].power, "{name}: power must decrease");
            }
        }
    }
}

#[test]
fn amortized_frontier_equals_independent_per_budget_solves() {
    let registry = Registry::with_all();
    let budgets: Vec<f64> = (1..=16).map(|b| b as f64 * 0.75).collect();
    let mut compared = 0usize;
    for seed in 0..24u64 {
        let instance = small_instance(seed);
        let options = SolveOptions::default();
        for name in SWEEPERS {
            let Ok(sweep) = registry.sweep(name, &instance, &options, &budgets) else {
                continue;
            };
            assert!(sweep.amortized, "{name} must take its amortized path");
            for &bound in &budgets {
                let amortized = sweep.frontier.best_within(bound).map(|p| p.power);
                let direct = registry
                    .solve(name, &instance, &SolveOptions::with_cost_bound(bound))
                    .ok()
                    .map(|o| o.power);
                match (amortized, direct) {
                    (Some(a), Some(d)) => {
                        assert!(
                            (a - d).abs() < 1e-9,
                            "seed {seed} {name} bound {bound}: frontier {a} ≠ solve {d}"
                        );
                        compared += 1;
                    }
                    (None, None) => {}
                    other => panic!(
                        "seed {seed} {name} bound {bound}: feasibility disagreement {other:?}"
                    ),
                }
            }
        }
    }
    assert!(
        compared >= 200,
        "only {compared} (solver, bound) pairs compared"
    );
}

#[test]
fn exact_sweepers_share_one_frontier_and_dominate_the_greedy() {
    let registry = Registry::with_all();
    let options = SolveOptions::default();
    for seed in 50..60u64 {
        let instance = small_instance(seed);
        let sweeps: Vec<_> = SWEEPERS
            .iter()
            .filter_map(|name| registry.sweep(name, &instance, &options, &[]).ok())
            .collect();
        if sweeps.is_empty() {
            continue;
        }
        let oracle = &sweeps
            .iter()
            .find(|s| s.solver == "exhaustive")
            .expect("small instances are oracle-enumerable")
            .frontier;
        for sweep in &sweeps {
            for point in oracle.points() {
                let achieved = sweep.frontier.best_within(point.cost).map(|p| p.power);
                if sweep.solver == "greedy_power" {
                    // GR is inexact: it may not reach tight oracle costs
                    // at all, and where it does it can only burn more.
                    if let Some(power) = achieved {
                        assert!(
                            power >= point.power - 1e-9,
                            "seed {seed}: GR beats the oracle at cost {}",
                            point.cost
                        );
                    }
                } else {
                    let power = achieved.unwrap_or_else(|| {
                        panic!(
                            "seed {seed} {}: no point within oracle cost {}",
                            sweep.solver, point.cost
                        )
                    });
                    assert!(
                        (power - point.power).abs() < 1e-9,
                        "seed {seed} {}: {} ≠ oracle {} at cost {}",
                        sweep.solver,
                        power,
                        point.power,
                        point.cost
                    );
                }
            }
        }
    }
}
