//! The indexed-lazy `JobSpace` equivalence contract, property-tested:
//!
//! * for arbitrary campaigns (scenario mixes, per-scenario counts,
//!   seeds) and any index `i`, [`ScenarioSpace::job`]`(i)` is identical
//!   to the eagerly generated `jobs()[i]` — field-for-field, the full
//!   serialized instance included. The per-job solver seed derives from
//!   the global index (`seeding::mix(fleet_seed, i)`), not from the job
//!   value, so instance identity plus the split test below pins the
//!   whole cell;
//! * any contiguous split of the **lazy** path, replayed through a
//!   [`FleetFold`] in shard order, reproduces the **eager** fleet digest
//!   byte-for-byte (aggregates, cell count, FNV cell checksum);
//! * shard runs construct only their range's jobs (`O(shard)` —
//!   counter-backed via [`CountingSpace`]).

use proptest::prelude::*;
use replica_engine::{
    extended_families, CellResult, CountingSpace, Demand, Fleet, FleetConfig, FleetFold, JobSpace,
    Registry, Scenario, ScenarioSpace, Topology,
};

/// Draws `n` scenarios (stride-sampled so topologies and demands mix)
/// from the extended families at a small node count.
fn arbitrary_scenarios(offset: usize, n: usize) -> Vec<Scenario> {
    let pool = extended_families(10);
    (0..n)
        .map(|i| pool[(offset + i * 7) % pool.len()].clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `job(i)` == `jobs()[i]`, field-for-field, for arbitrary campaigns.
    #[test]
    fn lazy_job_equals_eager_job_field_for_field(
        offset in 0usize..35,
        n_scenarios in 1usize..4,
        per_scenario in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let scenarios = arbitrary_scenarios(offset, n_scenarios);
        let space = ScenarioSpace::new(&scenarios, seed, per_scenario);
        let eager = Fleet::jobs_from_scenarios(&scenarios, seed, per_scenario);
        prop_assert_eq!(space.len(), eager.len());
        for (i, job) in eager.iter().enumerate() {
            let lazy = space.job(i);
            prop_assert_eq!(&lazy.scenario, &job.scenario, "job {} scenario", i);
            prop_assert_eq!(lazy.index, job.index, "job {} index", i);
            prop_assert_eq!(
                serde_json::to_string(&lazy.instance).unwrap(),
                serde_json::to_string(&job.instance).unwrap(),
                "job {}: lazy and eager instances must serialize identically",
                i
            );
        }
    }
}

/// One recorded job row: scenario, instance, per-solver cells.
type RecordedRow = (String, usize, Vec<(CellResult, f64)>);

/// Fleet over two small fixed scenarios (churn included — its instances
/// exercise the sim-backed generation path) with a randomized-free
/// solver pair, so every proptest case stays cheap.
fn split_fleet(registry: &Registry, seed: u64) -> (Vec<Scenario>, Fleet<'_>) {
    let scenarios = vec![
        Scenario::new(Topology::High, Demand::Uniform, 8),
        Scenario::new(Topology::Star, Demand::QuietChurn, 8),
    ];
    let config = FleetConfig {
        solvers: vec!["greedy_power".into(), "dp_power".into()],
        seed,
        batch_jobs: 2,
        ..Default::default()
    };
    (scenarios, Fleet::new(registry, config))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any contiguous split of the lazy job space, replayed shard by
    /// shard through a `FleetFold`, merges to the byte-identical digest
    /// of an eager single run over the materialized job list.
    #[test]
    fn any_lazy_split_reproduces_the_eager_digest(
        cut_a in 0usize..7,
        cut_b in 0usize..7,
        seed in 0u64..1_000,
    ) {
        let registry = Registry::with_all();
        let (scenarios, fleet) = split_fleet(&registry, seed);
        let per_scenario = 3;
        let eager_jobs = Fleet::jobs_from_scenarios(&scenarios, seed, per_scenario);
        let eager = fleet.run(&eager_jobs);

        let space = ScenarioSpace::new(&scenarios, seed, per_scenario);
        let n = space.len();
        prop_assert_eq!(n, eager_jobs.len());
        let mut cuts = [cut_a.min(n), cut_b.min(n)];
        cuts.sort_unstable();
        let bounds = [0, cuts[0], cuts[1], n];

        let mut fold = FleetFold::new(
            vec!["greedy_power", "dp_power"],
            Some("dp_power".into()),
        );
        for pair in bounds.windows(2) {
            // One recorded row per job of the range, replayed in order.
            let mut rows: Vec<RecordedRow> = Vec::new();
            fleet.run_space_shard_with_observer(&space, pair[0]..pair[1], |cell| {
                if rows.last().map(|(s, i, _)| (s.as_str(), *i))
                    != Some((cell.scenario, cell.instance))
                {
                    rows.push((cell.scenario.to_string(), cell.instance, Vec::new()));
                }
                rows.last_mut()
                    .expect("row pushed above")
                    .2
                    .push((cell.result.clone(), cell.wall_seconds));
            });
            for (scenario, instance, row) in rows {
                fold.fold_row(&scenario, instance, row);
            }
        }
        let merged = fold.finish();
        prop_assert_eq!(
            merged.digest(),
            eager.digest(),
            "lazy split at {:?} diverged from the eager run",
            bounds
        );
        prop_assert_eq!(merged.cell_count, eager.cell_count);
        prop_assert_eq!(merged.cell_checksum, eager.cell_checksum);
    }
}

#[test]
fn shard_runs_construct_only_their_range() {
    let registry = Registry::with_all();
    let (scenarios, fleet) = split_fleet(&registry, 42);
    let space = CountingSpace::new(ScenarioSpace::new(&scenarios, 42, 3));
    assert_eq!(space.len(), 6);

    let report = fleet.run_space_shard(&space, 2..5);
    assert_eq!(
        space.generated(),
        3,
        "a 3-job shard must construct exactly 3 jobs, not the campaign's 6"
    );
    assert_eq!(report.cell_count, 3 * 2, "3 jobs × 2 solvers");

    // The empty range constructs nothing at all.
    let before = space.generated();
    let empty = fleet.run_space_shard(&space, 5..5);
    assert_eq!(space.generated(), before);
    assert_eq!(empty.cell_count, 0);
}

#[test]
fn full_lazy_run_equals_full_eager_run() {
    let registry = Registry::with_all();
    let (scenarios, fleet) = split_fleet(&registry, 7);
    let space = ScenarioSpace::new(&scenarios, 7, 3);
    let lazy = fleet.run_space(&space);
    let eager = fleet.run(&Fleet::jobs_from_scenarios(&scenarios, 7, 3));
    assert_eq!(lazy.digest(), eager.digest());
    assert_eq!(lazy.table_deterministic(), eager.table_deterministic());
}
