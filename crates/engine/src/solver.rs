//! The uniform [`Solver`] interface every algorithm in the workspace is
//! wrapped behind.
//!
//! A solver consumes a [`replica_model::Instance`] plus [`SolveOptions`]
//! and yields a [`SolveOutcome`]: a placement together with its cost,
//! power, server count and wall-clock time. Crucially, the outcome's
//! metrics are **not** whatever the wrapped algorithm claims: every
//! placement is re-evaluated through the model crate's independent
//! Eq. 2/3/4 semantics, so outcomes from different algorithms are always
//! comparable (and a lying solver is caught immediately).
//!
//! [`Capabilities`] describe what an algorithm can consume — multi-mode
//! instances, pre-existing servers, a cost budget — and whether its result
//! is provably optimal for its [`Objective`]. The fleet runner and the
//! cross-validation suite use these flags to decide which instances a
//! solver may be asked to solve and how strictly to judge the answer.

use replica_core::SolveArena;
use replica_model::{Instance, ModePolicy, ModelError, Placement, Solution};
use std::cell::RefCell;
use std::fmt;
use std::time::{Duration, Instant};

thread_local! {
    /// Per-worker solve arena: fleet threads re-enter the hot solvers
    /// thousands of times, and the arena lets every solve after the first
    /// run allocation-free in steady state.
    static SOLVE_ARENA: RefCell<SolveArena> = RefCell::new(SolveArena::new());
}

/// Runs `f` with this thread's [`SolveArena`].
///
/// Re-entrancy safe: if the thread-local arena is already borrowed (a
/// solver's defaulted [`Solver::solve_traced_in`] delegating back through
/// [`Solver::solve`] would otherwise double-borrow), `f` gets a fresh
/// throwaway arena instead. Arena reuse never changes results — see
/// [`replica_core::arena`] — so which arena `f` receives is unobservable.
pub fn with_thread_arena<T>(f: impl FnOnce(&mut SolveArena) -> T) -> T {
    SOLVE_ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut SolveArena::new()),
    })
}

/// What a solver optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimize Eq. 2 / Eq. 4 reconfiguration cost (replica count in the
    /// classical setting).
    MinCost,
    /// Minimize Eq. 3 power, subject to [`SolveOptions::cost_bound`].
    MinPower,
}

/// Static description of what an algorithm supports.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// The objective the solver optimizes.
    pub objective: Objective,
    /// Handles instances with more than one server mode (`M > 1`).
    pub multi_mode: bool,
    /// *Exploits* pre-existing servers (a `false` here means the solver
    /// tolerates them but optimizes as if `E = ∅`, like the oblivious
    /// `GR` baseline).
    pub pre_existing: bool,
    /// Honors [`SolveOptions::cost_bound`].
    pub cost_bound: bool,
    /// Provably optimal for [`Self::objective`] on every instance whose
    /// features it supports.
    pub exact: bool,
    /// Has an amortized budget-sweep path: one run answers every cost
    /// budget (see [`crate::sweep::BudgetSweepSolver`]). Must agree with
    /// [`Solver::as_budget_sweep`] returning `Some`.
    pub amortized_sweep: bool,
}

/// Per-solve knobs shared by every solver.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Budget for `MinPower-BoundedCost` solvers (`f64::INFINITY` =
    /// unconstrained, recovering plain `MinPower`).
    pub cost_bound: f64,
    /// Seed for randomized solvers (simulated annealing). Deterministic
    /// solvers ignore it; the fleet runner derives a distinct value per
    /// instance so fleets are reproducible end to end.
    pub seed: u64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            cost_bound: f64::INFINITY,
            seed: 0xF1EE7,
        }
    }
}

impl SolveOptions {
    /// Unconstrained options with the given cost budget.
    pub fn with_cost_bound(cost_bound: f64) -> Self {
        SolveOptions {
            cost_bound,
            ..Self::default()
        }
    }
}

/// A solved instance, with metrics re-derived by the model crate.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Name of the producing solver (registry key).
    pub solver: &'static str,
    /// The placement found (modes assigned).
    pub placement: Placement,
    /// Eq. 2 / Eq. 4 cost of the placement, independently re-evaluated.
    pub cost: f64,
    /// Eq. 3 power of the placement, independently re-evaluated.
    pub power: f64,
    /// Server count.
    pub servers: u64,
    /// Reused pre-existing servers (the `e` of Eq. 2).
    pub reused: u64,
    /// Wall-clock time of the algorithm proper (excludes re-evaluation).
    pub wall: Duration,
}

/// Why a solve produced no outcome.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The instance uses a feature outside the solver's [`Capabilities`]
    /// (e.g. multiple modes handed to the single-mode `MinCost` DP).
    Unsupported(String),
    /// The underlying algorithm failed (usually infeasibility).
    Solver(ModelError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Unsupported(msg) => write!(f, "unsupported instance: {msg}"),
            EngineError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Solver(e)
    }
}

/// The uniform algorithm interface.
pub trait Solver: Send + Sync {
    /// Stable registry name (e.g. `"dp_power"`).
    fn name(&self) -> &'static str;

    /// What this solver supports.
    fn capabilities(&self) -> Capabilities;

    /// Solves one instance.
    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError>;

    /// [`Solver::solve`] under an open telemetry span.
    ///
    /// Phase-aware solvers (the DP wrappers) override this to hang
    /// `phase` sub-spans — DP table build, reconstruction — off `span`;
    /// the default ignores the span entirely. Overrides must be
    /// *observationally identical* to [`Solver::solve`]: tracing is
    /// strictly out-of-band, so the returned outcome may not depend on
    /// the span in any way (the trace-invariance proptest pins this
    /// through the fleet).
    fn solve_traced(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        _span: &replica_obs::Span,
    ) -> Result<SolveOutcome, EngineError> {
        self.solve(instance, options)
    }

    /// [`Solver::solve_traced`] with caller-provided working memory.
    ///
    /// The fleet runner calls this entry point with one [`SolveArena`] per
    /// worker thread so the hot solvers (greedy, both power DPs, the `GR`
    /// sweep) reuse their flat-tree layout, DP tables and prune buffers
    /// across jobs instead of reallocating per solve. The default ignores
    /// the arena and delegates to [`Solver::solve_traced`]; overrides must
    /// be *bit-identical* to the arena-free path (the equivalence
    /// batteries in `replica-core` pin this through arbitrary reuse
    /// sequences).
    fn solve_traced_in(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        span: &replica_obs::Span,
        _arena: &mut SolveArena,
    ) -> Result<SolveOutcome, EngineError> {
        self.solve_traced(instance, options, span)
    }

    /// Whether `instance` is within this solver's capabilities.
    fn supports(&self, instance: &Instance) -> bool {
        let caps = self.capabilities();
        caps.multi_mode || instance.mode_count() == 1
    }

    /// The amortized budget-sweep view of this solver, when it has one.
    ///
    /// `None` (the default) means the registry's sweep entry point falls
    /// back to one [`Solver::solve`] per requested budget
    /// ([`crate::sweep::sweep_via_solves`]).
    fn as_budget_sweep(&self) -> Option<&dyn crate::sweep::BudgetSweepSolver> {
        None
    }
}

/// Builds a [`SolveOutcome`] by re-evaluating `placement` against the
/// model semantics (the single funnel every wrapper goes through).
pub fn evaluated_outcome(
    solver: &'static str,
    instance: &Instance,
    placement: &Placement,
    policy: ModePolicy,
    wall: Duration,
) -> Result<SolveOutcome, EngineError> {
    let solution = Solution::evaluate_with_policy(instance, placement, policy)?;
    Ok(SolveOutcome {
        solver,
        placement: solution.placement.clone(),
        cost: solution.cost,
        power: solution.power,
        servers: solution.counts.total_servers(),
        reused: solution.counts.reused_total(),
        wall,
    })
}

/// Runs `f`, returning its result together with its wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}
