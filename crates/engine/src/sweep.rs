//! The amortized budget-sweep API: one run per instance answers *every*
//! cost budget.
//!
//! The paper's power/cost trade-off experiment (Figures 8–11) sweeps ~30
//! cost bounds per tree. For the exact DPs the bound never enters the
//! recursion — it only filters the root scan — so a single run yields the
//! whole budget → (cost, power) [`Frontier`]; the capacity-swept `GR`
//! baseline likewise computes its handful of sweep points once. Forcing
//! those algorithms through the per-solve [`Solver::solve`] interface
//! would re-run them per bound and defeat the amortization.
//!
//! This module closes that gap at the registry level:
//!
//! * solvers with an amortized path implement [`BudgetSweepSolver`] and
//!   advertise it via [`Solver::as_budget_sweep`] (and the
//!   `amortized_sweep` capability flag);
//! * [`Registry::sweep`](crate::registry::Registry::sweep) dispatches to
//!   the native implementation when one exists and otherwise falls back
//!   to [`sweep_via_solves`] — one plain solve per requested budget — so
//!   *every* registered solver answers the same question through one API.
//!
//! Frontier extraction itself lives in [`replica_core::frontier`]; the
//! engine prunes with `epsilon = 0.0`, which preserves the best-within-
//! budget answer of the raw candidate set exactly.

use crate::solver::{EngineError, SolveOptions, Solver};
use replica_core::frontier::pareto_filter;
use replica_model::{le_tolerant, Instance};
use std::time::Duration;

/// One point of a budget sweep: a feasible `(cost, power)` trade-off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierPoint {
    /// Eq. 2 / Eq. 4 reconfiguration cost of the placement.
    pub cost: f64,
    /// Eq. 3 power of the placement.
    pub power: f64,
}

/// The budget → (cost, power) trade-off curve of one solver on one
/// instance: points sorted by strictly increasing cost and strictly
/// decreasing power.
///
/// For any budget `b`, [`Frontier::best_within`]`(b)` equals the minimum
/// power the producing solver can reach at cost ≤ `b` — the front is
/// pruned exactly (no epsilon), so nothing achievable is lost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Frontier {
    points: Vec<FrontierPoint>,
}

impl Frontier {
    /// Builds a frontier from raw `(cost, power)` points, pruning
    /// dominated ones.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        Frontier {
            points: pareto_filter(points, 0.0)
                .into_iter()
                .map(|(cost, power)| FrontierPoint { cost, power })
                .collect(),
        }
    }

    /// The pruned points, sorted by increasing cost.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep found no feasible placement at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The minimum-power point with cost within `cost_bound` (tolerant
    /// comparison, matching the DPs' root-scan filter).
    pub fn best_within(&self, cost_bound: f64) -> Option<FrontierPoint> {
        // Sorted by cost with strictly decreasing power: the last
        // affordable point is the best one.
        self.points
            .iter()
            .rev()
            .find(|p| le_tolerant(p.cost, cost_bound))
            .copied()
    }

    /// Samples the frontier at each budget: the achievable minimum power,
    /// or `None` where no placement fits.
    pub fn sample(&self, budgets: &[f64]) -> Vec<Option<f64>> {
        budgets
            .iter()
            .map(|&b| self.best_within(b).map(|p| p.power))
            .collect()
    }
}

/// A solver with an amortized budget-sweep path: one run per instance
/// yields the full [`Frontier`].
pub trait BudgetSweepSolver: Solver {
    /// Runs the algorithm once and returns every achievable `(cost,
    /// power)` trade-off. An error means the instance itself is
    /// infeasible (or unsupported), not that some budget is too tight —
    /// tight budgets simply have no frontier point within them.
    fn sweep_frontier(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<Frontier, EngineError>;
}

/// The outcome of a registry-level budget sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Name of the producing solver (registry key).
    pub solver: &'static str,
    /// The budget → (cost, power) frontier.
    pub frontier: Frontier,
    /// Wall-clock time of the whole sweep (one amortized run, or the sum
    /// of the per-budget fallback solves).
    pub wall: Duration,
    /// `true` when the native amortized path produced the frontier,
    /// `false` for the per-budget fallback adapter.
    pub amortized: bool,
}

/// The generic fallback adapter: one [`Solver::solve`] per budget, the
/// outcomes pruned into a [`Frontier`].
///
/// Solvers that ignore [`SolveOptions::cost_bound`] (capability flag
/// `cost_bound = false`) are solved once — every budget would repeat the
/// identical computation. An `Err` is returned only when *no* budget
/// admits a solution; the error of the loosest budget is reported.
pub fn sweep_via_solves(
    solver: &dyn Solver,
    instance: &Instance,
    options: &SolveOptions,
    budgets: &[f64],
) -> Result<Frontier, EngineError> {
    let budget_insensitive = !solver.capabilities().cost_bound;
    let effective: &[f64] = if budgets.is_empty() || budget_insensitive {
        &[options.cost_bound]
    } else {
        budgets
    };
    let mut points = Vec::new();
    let mut last_err = None;
    for &bound in effective {
        let per_budget = SolveOptions {
            cost_bound: bound,
            ..*options
        };
        match solver.solve(instance, &per_budget) {
            Ok(outcome) => points.push((outcome.cost, outcome.power)),
            Err(e) => last_err = Some(e),
        }
    }
    if points.is_empty() {
        return Err(last_err
            .unwrap_or_else(|| EngineError::Unsupported("sweep invoked with no budgets".into())));
    }
    Ok(Frontier::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> Frontier {
        Frontier::from_points(vec![
            (2.0, 12.0),
            (1.0, 12.0), // (2, 12) is dominated by this
            (3.0, 9.0),
            (4.0, 9.0), // dominated
            (6.0, 5.0),
        ])
    }

    #[test]
    fn from_points_prunes_dominated() {
        let f = frontier();
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.points(),
            &[
                FrontierPoint {
                    cost: 1.0,
                    power: 12.0
                },
                FrontierPoint {
                    cost: 3.0,
                    power: 9.0
                },
                FrontierPoint {
                    cost: 6.0,
                    power: 5.0
                },
            ]
        );
    }

    #[test]
    fn best_within_walks_the_front() {
        let f = frontier();
        assert_eq!(f.best_within(0.5), None);
        assert_eq!(f.best_within(1.0).unwrap().power, 12.0);
        assert_eq!(f.best_within(2.5).unwrap().power, 12.0);
        assert_eq!(f.best_within(3.0).unwrap().power, 9.0);
        assert_eq!(f.best_within(f64::INFINITY).unwrap().power, 5.0);
    }

    #[test]
    fn sample_mirrors_best_within() {
        let f = frontier();
        assert_eq!(
            f.sample(&[0.5, 3.0, 100.0]),
            vec![None, Some(9.0), Some(5.0)]
        );
        assert!(Frontier::default()
            .sample(&[1.0])
            .iter()
            .all(Option::is_none));
    }
}
