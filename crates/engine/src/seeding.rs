//! Deterministic per-instance seed derivation.
//!
//! Everything the engine randomizes flows from one fleet seed through
//! [`mix`]: instance `i` of a fleet draws from `rng(seed, i)`, and a
//! solver's per-instance randomness (annealing) is seeded with
//! `mix(seed, i)`. The mixing is a SplitMix64 finalizer, so consecutive
//! indices produce decorrelated streams and results are independent of
//! thread scheduling — the property the determinism suite pins down.
//!
//! The index handed to [`mix`] is always a **global, stable** one — the
//! job's position in the [`JobSpace`](crate::jobspace::JobSpace) for
//! solver seeds, the within-scenario instance index (plus the
//! [`label_stream`]-hashed scenario name) for instance generation —
//! never an enumeration order. That is what lets a lazy job space, an
//! eager job list and any contiguous shard split of either produce
//! bit-identical cells: who generates or solves a job, and when, cannot
//! influence its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes an experiment seed with a stream index into an independent seed.
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for stream `stream` of experiment `seed`.
pub fn rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, stream))
}

/// A stable 64-bit label hash (FNV-1a), for deriving independent seed
/// streams per named scenario: without it, instance `i` of every scenario
/// in a fleet would share one RNG stream and cross-scenario aggregates
/// would be built on correlated draws.
pub fn label_stream(label: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: u64 = rng(7, 0).random();
        let b: u64 = rng(7, 0).random();
        let c: u64 = rng(7, 1).random();
        let d: u64 = rng(8, 0).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn mixing_spreads_consecutive_indices() {
        let xs: Vec<u64> = (0..64).map(|i| mix(42, i)).collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collision among 64 consecutive streams");
    }
}
