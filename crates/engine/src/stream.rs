//! Online (streaming) statistics for the fleet runner.
//!
//! The fleet folds every `(instance, solver)` outcome into fixed-size
//! per-`(scenario, solver)` accumulators as soon as it is produced, so a
//! run's memory footprint no longer grows with `instances × solvers`. An
//! accumulator tracks count, running sum (→ mean), min, max and a P²
//! quantile sketch for the median and the 90th percentile.
//!
//! The accumulator itself ([`MetricAccumulator`], with [`Stats`] and
//! [`P2Quantile`]) lives in `replica-obs` — deterministic aggregation
//! and telemetry histograms share one implementation — and is
//! re-exported here unchanged. This module owns what is specific to the
//! deterministic merge story: [`RecordedMetric`] and the fold-facing
//! `MetricSink` abstraction.
//!
//! **Determinism.** All state transitions are pure functions of the value
//! sequence, and the fleet always folds in job order (rayon only
//! parallelizes the *production* of outcomes, see
//! [`crate::fleet`]) — so every statistic here, including the sketch, is
//! byte-identical across runs and worker-thread counts.
//!
//! **Merging (sharded fleets).** [`RecordedMetric`] is the mergeable form
//! used by `replica-fleetd` shard reports: the same accumulator plus the
//! ordered observation tape. Count, min and max admit an exact pairwise
//! merge; the running sum (floating-point addition is not associative)
//! and the P² sketches (state transitions are order-sensitive and lossy)
//! do not, so [`RecordedMetric::merge_in_order`] replays the right-hand
//! tape — making a left-fold over contiguous shards *literally* the
//! sequential computation, bit for bit.

pub use replica_obs::{MetricAccumulator, P2Quantile, Stats};

use serde::{Deserialize, Serialize};

/// A mergeable [`MetricAccumulator`]: the same moments and sketches plus
/// the ordered observation tape, which is what makes *exact* merging
/// possible at all.
///
/// Why a tape? Two of the accumulator's components cannot be merged from
/// end states alone:
///
/// * the running **sum** — floating-point addition is not associative, so
///   `sum(A) + sum(B)` can differ in the last ulp from folding `B`'s
///   values onto `sum(A)` one by one (which is what the sequential
///   accumulator computes);
/// * the **P² sketches** — their five-marker state is a lossy,
///   order-sensitive function of the whole value sequence.
///
/// `count`, `min` and `max` *do* merge pairwise exactly, and
/// [`RecordedMetric::merge_in_order`] verifies the replayed result
/// against that pairwise combination. Everything else replays the
/// right-hand tape in order. The contract (pinned by the shard
/// determinism suite): left-folding the recorded metrics of contiguous
/// shards, in shard order, yields state bit-identical to one sequential
/// accumulator over the concatenated value sequence.
///
/// Serialization is the tape alone — state is rebuilt by replay on
/// deserialize, so a wire round-trip is bit-exact by construction and
/// the non-finite `min`/`max` sentinels of an empty accumulator never
/// reach JSON (which cannot represent them).
///
/// The price of mergeability is `O(n)` state, which is why the in-process
/// fleet keeps using the plain accumulator: tapes exist only at the shard
/// boundary, bounded by shard size.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(try_from = "Vec<f64>", into = "Vec<f64>")]
pub struct RecordedMetric {
    acc: MetricAccumulator,
    tape: Vec<f64>,
}

impl RecordedMetric {
    /// Folds one observation in (and records it on the tape).
    pub fn push(&mut self, value: f64) {
        self.acc.push(value);
        self.tape.push(value);
    }

    /// Observations folded so far.
    pub fn count(&self) -> usize {
        self.acc.count()
    }

    /// Running mean (`0.0` with no observations).
    pub fn mean(&self) -> f64 {
        self.acc.mean()
    }

    /// Snapshot of the accumulated distribution.
    pub fn stats(&self) -> Stats {
        self.acc.stats()
    }

    /// The ordered observation sequence.
    pub fn tape(&self) -> &[f64] {
        &self.tape
    }

    /// Merges `other` — the recorded metric of the *immediately
    /// following* contiguous value range — into `self`.
    ///
    /// Count/min/max are combined pairwise (exact); the sum and both P²
    /// sketches replay `other`'s tape in order, and the pairwise moments
    /// double-check the replay (a mismatch would mean corrupted state and
    /// panics).
    pub fn merge_in_order(&mut self, other: &RecordedMetric) {
        // The exact pairwise moment combination, computed up front…
        let count = self.acc.count() + other.acc.count();
        let min = self.acc.min().min(other.acc.min());
        let max = self.acc.max().max(other.acc.max());
        // …then the order-preserving replay of the right-hand tape, which
        // count/min/max must agree with.
        for &value in &other.tape {
            self.acc.push(value);
        }
        self.tape.extend_from_slice(&other.tape);
        assert_eq!(self.acc.count(), count, "replayed count diverged");
        assert!(
            self.acc.min().total_cmp(&min).is_eq() && self.acc.max().total_cmp(&max).is_eq(),
            "replayed min/max diverged from the pairwise combination"
        );
    }
}

impl From<RecordedMetric> for Vec<f64> {
    fn from(metric: RecordedMetric) -> Vec<f64> {
        metric.tape
    }
}

impl TryFrom<Vec<f64>> for RecordedMetric {
    type Error = String;

    /// Rebuilds the accumulator by replaying the tape. Non-finite values
    /// are rejected: the JSON wire cannot represent them (they render as
    /// `null`), so accepting them locally would create states that
    /// silently change across a round-trip.
    fn try_from(tape: Vec<f64>) -> Result<Self, Self::Error> {
        let mut metric = RecordedMetric::default();
        for &value in &tape {
            if !value.is_finite() {
                return Err(format!(
                    "non-finite value {value} in a recorded metric tape"
                ));
            }
            metric.acc.push(value);
        }
        metric.tape = tape;
        Ok(metric)
    }
}

/// Uniform push/snapshot interface over the plain and recorded
/// accumulators, so the fleet's fold is generic over whether tapes are
/// kept (in-process runs: no; shard workers: yes).
pub(crate) trait MetricSink: Default {
    /// Folds one observation in.
    fn push(&mut self, value: f64);
    /// Observations folded so far.
    fn count(&self) -> usize;
    /// Running mean.
    fn mean(&self) -> f64;
    /// Distribution snapshot.
    fn stats(&self) -> Stats;
}

impl MetricSink for MetricAccumulator {
    fn push(&mut self, value: f64) {
        MetricAccumulator::push(self, value);
    }
    fn count(&self) -> usize {
        MetricAccumulator::count(self)
    }
    fn mean(&self) -> f64 {
        MetricAccumulator::mean(self)
    }
    fn stats(&self) -> Stats {
        MetricAccumulator::stats(self)
    }
}

impl MetricSink for RecordedMetric {
    fn push(&mut self, value: f64) {
        RecordedMetric::push(self, value);
    }
    fn count(&self) -> usize {
        RecordedMetric::count(self)
    }
    fn mean(&self) -> f64 {
        RecordedMetric::mean(self)
    }
    fn stats(&self) -> Stats {
        RecordedMetric::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The full internal state (sum, min/max, both sketches' markers),
    /// via the derived Debug — the strictest bit-identity proxy we have.
    fn state_of(metric: &RecordedMetric) -> String {
        format!("{metric:?}")
    }

    fn sequential(values: &[f64]) -> RecordedMetric {
        let mut acc = RecordedMetric::default();
        for &v in values {
            acc.push(v);
        }
        acc
    }

    #[test]
    fn merge_in_order_is_bit_identical_to_the_sequential_fold() {
        let mut rng = StdRng::seed_from_u64(17);
        let values: Vec<f64> = (0..1_000)
            .map(|_| rng.random::<f64>() * 1e3 - 500.0)
            .collect();
        let whole = sequential(&values);
        for splits in [
            vec![0],
            vec![1],
            vec![4],
            vec![5],
            vec![500],
            vec![999],
            vec![1000],
            vec![3, 9, 400, 401, 998],
        ] {
            let mut merged = RecordedMetric::default();
            let mut start = 0;
            for &end in splits.iter().chain(std::iter::once(&values.len())) {
                merged.merge_in_order(&sequential(&values[start..end]));
                start = end;
            }
            assert_eq!(
                state_of(&merged),
                state_of(&whole),
                "split {splits:?} must replay to the sequential state"
            );
        }
    }

    #[test]
    fn merged_empty_shards_are_identity() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let mut merged = RecordedMetric::default();
        merged.merge_in_order(&RecordedMetric::default());
        merged.merge_in_order(&sequential(&values));
        merged.merge_in_order(&RecordedMetric::default());
        assert_eq!(state_of(&merged), state_of(&sequential(&values)));
        assert_eq!(merged.count(), values.len());
    }

    #[test]
    fn recorded_metric_round_trips_through_json_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(23);
        // Awkward values on purpose: denormal-ish, negative, shortest-
        // round-trip-sensitive.
        let values: Vec<f64> = (0..64)
            .map(|_| (rng.random::<f64>() - 0.5) * 1e-3)
            .chain([0.1 + 0.2, 1e16, -7.0])
            .collect();
        let acc = sequential(&values);
        let json = serde_json::to_string(&acc).unwrap();
        let back: RecordedMetric = serde_json::from_str(&json).unwrap();
        assert_eq!(state_of(&back), state_of(&acc));
        // Empty tape round-trips too (min/max sentinels never hit JSON).
        let empty_json = serde_json::to_string(&RecordedMetric::default()).unwrap();
        assert_eq!(empty_json, "[]");
        let back: RecordedMetric = serde_json::from_str(&empty_json).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.stats(), Stats::default());
    }

    #[test]
    fn pre_p99_tapes_still_deserialize_and_gain_p99() {
        // The wire format is the bare observation array — exactly what
        // the pre-p99 writer emitted — so old tapes read back unchanged,
        // and the rebuilt accumulator now carries the p99 sketch too.
        let old_wire = "[1.5,2.5,3.5,4.5,5.5,100.25]";
        let back: RecordedMetric = serde_json::from_str(old_wire).unwrap();
        assert_eq!(back.count(), 6);
        let stats = back.stats();
        assert_eq!(stats.max, 100.25);
        assert!(stats.p99 >= stats.p90, "p99 sketch must be populated");
        // Re-serializing emits the identical tape-only format: adding a
        // quantile grew no wire field.
        let tape: Vec<f64> = back.tape().to_vec();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&tape).unwrap()
        );
    }

    #[test]
    fn recorded_metric_matches_plain_accumulator() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 83) % 107) as f64).collect();
        let mut plain = MetricAccumulator::default();
        let mut recorded = RecordedMetric::default();
        for &v in &values {
            plain.push(v);
            recorded.push(v);
        }
        assert_eq!(plain.stats(), recorded.stats());
        assert_eq!(recorded.tape(), &values[..]);
    }
}
