//! The solver registry: every algorithm in `replica-core`, wrapped behind
//! [`Solver`] and addressable by name.
//!
//! | Name | Wraps | Objective | Exact | Amortized sweep |
//! |---|---|---|---|---|
//! | `greedy` | [`replica_core::greedy`] (`GR` of \[19\]) | cost | count-optimal | — |
//! | `dp_mincost_nopre` | [`replica_core::dp_mincost_nopre`] (\[6\]) | cost | count-optimal | — |
//! | `dp_mincost` | [`replica_core::dp_mincost`] (Theorem 1) | cost | ✓ (single-mode) | — |
//! | `dp_power` | [`replica_core::dp_power_pruned`] (pruned Theorem 3) | power | ✓ | ✓ |
//! | `dp_power_full` | [`replica_core::dp_power`] (full-state Theorem 3) | power | ✓ | ✓ |
//! | `greedy_power` | [`replica_core::greedy_power`] (§5.2 baseline) | power | — | ✓ |
//! | `exhaustive` | [`replica_core::exhaustive`] (oracle) | power | ✓ (small instances) | ✓ |
//! | `heur_power_greedy` | [`replica_core::heuristics::power_greedy`] | power | — | — |
//! | `heur_local_search` | power_greedy + [`replica_core::heuristics::local_search`] | power | — | — |
//! | `heur_annealing` | power_greedy + [`replica_core::heuristics::annealing`] | power | — | — |
//!
//! `dp_power` is the dominance-*pruned* exact DP: it returns bit-equal
//! optima to the paper's full state-vector DP while running 1–2 orders of
//! magnitude faster in fleet runs, so it is the default. The full-state
//! algorithm stays registered as `dp_power_full`, the cross-check the
//! oracle suite exercises against the pruned one.
//!
//! `greedy` / `dp_mincost_nopre` are *count-optimal*: they return the
//! minimum replica count (the classical `MinCost` optimum), which equals
//! the Eq. 2 cost optimum only without pre-existing servers; their `exact`
//! flag is therefore `false` under the stricter Eq. 4 reading the
//! [`Capabilities`] docs define.
//!
//! Solvers with an amortized budget sweep (`dp_power`, `dp_power_full`,
//! `greedy_power`, `exhaustive`) answer every cost budget from one run via
//! [`Registry::sweep`]; the rest are adapted per budget
//! ([`crate::sweep::sweep_via_solves`]).

use crate::solver::{
    evaluated_outcome, timed, with_thread_arena, Capabilities, EngineError, Objective,
    SolveOptions, SolveOutcome, Solver,
};
use crate::sweep::{sweep_via_solves, BudgetSweepSolver, Frontier, SweepOutcome};
use replica_core::heuristics::{annealing, local_search, power_greedy};
use replica_core::{
    dp_mincost, dp_mincost_nopre, dp_power, dp_power_pruned, exhaustive, greedy, greedy_power,
    SolveArena,
};
use replica_model::{Instance, ModePolicy, ModelError};
use replica_obs::Span;

/// All registered solvers, addressable by name.
pub struct Registry {
    solvers: Vec<Box<dyn Solver>>,
}

impl Registry {
    /// An empty registry (use [`Registry::with_all`] for the full set).
    pub fn new() -> Self {
        Registry {
            solvers: Vec::new(),
        }
    }

    /// Registers every algorithm in the workspace.
    pub fn with_all() -> Self {
        let mut registry = Registry::new();
        registry.register(Box::new(GreedySolver));
        registry.register(Box::new(MinCountDpSolver));
        registry.register(Box::new(MinCostDpSolver));
        registry.register(Box::new(PrunedPowerDpSolver));
        registry.register(Box::new(FullPowerDpSolver));
        registry.register(Box::new(GreedyPowerSolver));
        registry.register(Box::new(ExhaustiveSolver));
        registry.register(Box::new(PowerGreedySolver));
        registry.register(Box::new(LocalSearchSolver));
        registry.register(Box::new(AnnealingSolver));
        registry
    }

    /// Adds a solver. Replaces any existing solver of the same name.
    pub fn register(&mut self, solver: Box<dyn Solver>) {
        self.solvers.retain(|s| s.name() != solver.name());
        self.solvers.push(solver);
    }

    /// Looks a solver up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Solver> {
        self.solvers
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.solvers.iter().map(|s| s.name()).collect()
    }

    /// Iterates over the registered solvers.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether no solver is registered.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Solves `instance` with the named solver.
    pub fn solve(
        &self,
        name: &str,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        let solver = self
            .get(name)
            .ok_or_else(|| EngineError::Unsupported(format!("no solver named {name:?}")))?;
        solver.solve(instance, options)
    }

    /// Budget sweep through the named solver: the full budget → (cost,
    /// power) [`Frontier`] of one instance.
    ///
    /// Dispatches to the solver's amortized
    /// [`BudgetSweepSolver`] path when it has one (one algorithm run
    /// answers every budget; `budgets` is ignored) and otherwise adapts
    /// the plain per-solve interface with one solve per entry of
    /// `budgets` ([`sweep_via_solves`]).
    ///
    /// ```
    /// use replica_engine::prelude::*;
    ///
    /// let instance = Scenario::new(Topology::Fat, Demand::Uniform, 12).instance(7, 0);
    /// let registry = Registry::with_all();
    /// let budgets: Vec<f64> = (5..=30).map(f64::from).collect();
    /// let sweep = registry
    ///     .sweep("dp_power", &instance, &SolveOptions::default(), &budgets)
    ///     .unwrap();
    /// assert!(sweep.amortized, "the exact DP answers all budgets in one run");
    /// // Power is non-increasing in the budget along the frontier.
    /// let powers: Vec<Option<f64>> = sweep.frontier.sample(&budgets);
    /// for pair in powers.windows(2) {
    ///     if let (Some(a), Some(b)) = (pair[0], pair[1]) {
    ///         assert!(b <= a + 1e-9);
    ///     }
    /// }
    /// ```
    pub fn sweep(
        &self,
        name: &str,
        instance: &Instance,
        options: &SolveOptions,
        budgets: &[f64],
    ) -> Result<SweepOutcome, EngineError> {
        let solver = self
            .get(name)
            .ok_or_else(|| EngineError::Unsupported(format!("no solver named {name:?}")))?;
        let (native, (result, wall)) = match solver.as_budget_sweep() {
            Some(amortized) => (true, timed(|| amortized.sweep_frontier(instance, options))),
            None => (
                false,
                timed(|| sweep_via_solves(solver, instance, options, budgets)),
            ),
        };
        Ok(SweepOutcome {
            solver: solver.name(),
            frontier: result?,
            wall,
            amortized: native,
        })
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_all()
    }
}

// ---------------------------------------------------------------------------
// Wrappers
// ---------------------------------------------------------------------------

/// `GR` of [19] at capacity `W_M`, modes lowered to the load.
struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinCost,
            multi_mode: true,
            pre_existing: false,
            cost_bound: false,
            exact: false,
            amortized_sweep: false,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        with_thread_arena(|arena| self.solve_traced_in(instance, options, &Span::disabled(), arena))
    }

    // The arena entry point holds the real implementation: the flat layout
    // and flow buffers come from the caller's arena, so fleet threads
    // (which re-enter the greedy thousands of times) run allocation-free
    // in steady state.
    fn solve_traced_in(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
        _span: &Span,
        arena: &mut SolveArena,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| {
            arena.flat.rebuild(instance.tree());
            greedy::greedy_min_replicas_flat(
                &arena.flat,
                instance.max_capacity(),
                &mut arena.greedy,
            )
        });
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::LowestFeasible,
            wall,
        )
    }
}

/// The `O(N²)` replica-count DP of [6].
struct MinCountDpSolver;

impl Solver for MinCountDpSolver {
    fn name(&self) -> &'static str {
        "dp_mincost_nopre"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinCost,
            multi_mode: true,
            pre_existing: false,
            cost_bound: false,
            exact: false,
            amortized_sweep: false,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) =
            timed(|| dp_mincost_nopre::solve_min_count(instance.tree(), instance.max_capacity()));
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::LowestFeasible,
            wall,
        )
    }
}

/// The `MinCost-WithPre` DP (Theorem 1); single-mode instances only.
struct MinCostDpSolver;

impl Solver for MinCostDpSolver {
    fn name(&self) -> &'static str {
        "dp_mincost"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinCost,
            multi_mode: false,
            pre_existing: true,
            cost_bound: false,
            exact: true,
            amortized_sweep: false,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        if instance.mode_count() != 1 {
            return Err(EngineError::Unsupported(
                "dp_mincost is the single-mode Theorem 1 DP; use dp_power for modes".into(),
            ));
        }
        let (result, wall) = timed(|| dp_mincost::solve_min_cost(instance));
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }
}

/// The full state-vector `MinPower-BoundedCost` DP (Theorem 3), kept as
/// the cross-check against the default pruned reformulation.
struct FullPowerDpSolver;

impl Solver for FullPowerDpSolver {
    fn name(&self) -> &'static str {
        "dp_power_full"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: true,
            cost_bound: true,
            exact: true,
            amortized_sweep: true,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        self.solve_traced(instance, options, &Span::disabled())
    }

    fn solve_traced(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        span: &Span,
    ) -> Result<SolveOutcome, EngineError> {
        with_thread_arena(|arena| self.solve_traced_in(instance, options, span, arena))
    }

    // The one implementation serves all three entry points: `solve` passes
    // a disabled span and both it and `solve_traced` borrow the thread
    // arena, so the phases always run identically, tracing stays
    // out-of-band by construction, and arena reuse is bit-invisible (the
    // full DP keeps its hash tables fresh per solve — see the determinism
    // notes in `replica_core::dp_power`).
    fn solve_traced_in(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        span: &Span,
        arena: &mut SolveArena,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| -> Result<_, ModelError> {
            let dp = {
                let _phase = span.child("phase", "dp_table");
                dp_power::PowerDp::run_in(instance, &mut arena.full)?
            };
            let _phase = span.child("phase", "reconstruct");
            let outcome = match dp.best_within(options.cost_bound) {
                Some(best) => dp.reconstruct(best),
                None => Err(ModelError::Infeasible(format!(
                    "no placement fits the cost bound {}",
                    options.cost_bound
                ))),
            };
            dp.recycle(&mut arena.full);
            outcome
        });
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }

    fn as_budget_sweep(&self) -> Option<&dyn BudgetSweepSolver> {
        Some(self)
    }
}

impl BudgetSweepSolver for FullPowerDpSolver {
    fn sweep_frontier(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
    ) -> Result<Frontier, EngineError> {
        with_thread_arena(|arena| {
            let dp = dp_power::PowerDp::run_in(instance, &mut arena.full)?;
            let points = dp.cost_power_points();
            dp.recycle(&mut arena.full);
            Ok(Frontier::from_points(points))
        })
    }
}

/// The dominance-pruned exact power DP (beyond the paper) — the default
/// `dp_power`: bit-equal optima, 1–2 orders of magnitude faster in fleet
/// runs than the full-state formulation.
struct PrunedPowerDpSolver;

impl Solver for PrunedPowerDpSolver {
    fn name(&self) -> &'static str {
        "dp_power"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: true,
            cost_bound: true,
            exact: true,
            amortized_sweep: true,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        self.solve_traced(instance, options, &Span::disabled())
    }

    fn solve_traced(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        span: &Span,
    ) -> Result<SolveOutcome, EngineError> {
        with_thread_arena(|arena| self.solve_traced_in(instance, options, span, arena))
    }

    // One implementation for all three entry points; see `FullPowerDpSolver`.
    fn solve_traced_in(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        span: &Span,
        arena: &mut SolveArena,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| -> Result<_, ModelError> {
            let dp = {
                let _phase = span.child("phase", "dp_table");
                dp_power_pruned::PrunedPowerDp::run_in(instance, &mut arena.pruned)?
            };
            let _phase = span.child("phase", "reconstruct");
            let outcome = match dp.best_within(options.cost_bound).copied() {
                Some(best) => dp.reconstruct(&best),
                None => Err(ModelError::Infeasible(format!(
                    "no placement fits the cost bound {}",
                    options.cost_bound
                ))),
            };
            dp.recycle(&mut arena.pruned);
            outcome
        });
        evaluated_outcome(self.name(), instance, &result?, ModePolicy::Assigned, wall)
    }

    fn as_budget_sweep(&self) -> Option<&dyn BudgetSweepSolver> {
        Some(self)
    }
}

impl BudgetSweepSolver for PrunedPowerDpSolver {
    fn sweep_frontier(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
    ) -> Result<Frontier, EngineError> {
        with_thread_arena(|arena| {
            let dp = dp_power_pruned::PrunedPowerDp::run_in(instance, &mut arena.pruned)?;
            let points = dp.cost_power_points();
            dp.recycle(&mut arena.pruned);
            Ok(Frontier::from_points(points))
        })
    }
}

/// The §5.2 baseline: `GR` swept over trial capacities, best power kept.
struct GreedyPowerSolver;

impl Solver for GreedyPowerSolver {
    fn name(&self) -> &'static str {
        "greedy_power"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: false,
            cost_bound: true,
            exact: false,
            amortized_sweep: true,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        with_thread_arena(|arena| self.solve_traced_in(instance, options, &Span::disabled(), arena))
    }

    // Arena entry point: the whole `W₁..=W_M` sweep shares one flat layout
    // and one set of greedy buffers from the caller's arena.
    fn solve_traced_in(
        &self,
        instance: &Instance,
        options: &SolveOptions,
        _span: &Span,
        arena: &mut SolveArena,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| greedy_power::solve_in(instance, options.cost_bound, arena));
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }

    fn as_budget_sweep(&self) -> Option<&dyn BudgetSweepSolver> {
        Some(self)
    }
}

impl BudgetSweepSolver for GreedyPowerSolver {
    fn sweep_frontier(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
    ) -> Result<Frontier, EngineError> {
        // The capacity sweep is computed once; every budget filters the
        // same handful of points. An instance no trial capacity can serve
        // yields an empty frontier, not an error (matching the paper's
        // "value 0 when the algorithm fails" convention).
        let points = with_thread_arena(|arena| greedy_power::paper_sweep_in(instance, arena))
            .into_iter()
            .map(|p| (p.cost, p.power))
            .collect();
        Ok(Frontier::from_points(points))
    }
}

/// The exhaustive oracle (refuses instances beyond its enumeration cap).
struct ExhaustiveSolver;

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: true,
            cost_bound: true,
            exact: true,
            amortized_sweep: true,
        }
    }

    fn supports(&self, instance: &Instance) -> bool {
        let combos = (instance.mode_count() as u128 + 1)
            .checked_pow(instance.tree().internal_count() as u32)
            .unwrap_or(u128::MAX);
        combos <= exhaustive::MAX_COMBINATIONS
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        if !self.supports(instance) {
            return Err(EngineError::Unsupported(format!(
                "instance too large for exhaustive enumeration (> {} combinations)",
                exhaustive::MAX_COMBINATIONS
            )));
        }
        let (result, wall) = timed(|| exhaustive::min_power_bounded(instance, options.cost_bound));
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }

    fn as_budget_sweep(&self) -> Option<&dyn BudgetSweepSolver> {
        Some(self)
    }
}

impl BudgetSweepSolver for ExhaustiveSolver {
    fn sweep_frontier(
        &self,
        instance: &Instance,
        _options: &SolveOptions,
    ) -> Result<Frontier, EngineError> {
        if !self.supports(instance) {
            return Err(EngineError::Unsupported(format!(
                "instance too large for exhaustive enumeration (> {} combinations)",
                exhaustive::MAX_COMBINATIONS
            )));
        }
        Ok(Frontier::from_points(exhaustive::pareto(instance)))
    }
}

/// The §6 constructive fill-threshold heuristic.
struct PowerGreedySolver;

impl Solver for PowerGreedySolver {
    fn name(&self) -> &'static str {
        "heur_power_greedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: true,
            cost_bound: true,
            exact: false,
            amortized_sweep: false,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| power_greedy::solve(instance, options.cost_bound));
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }
}

/// Constructive heuristic polished by first-improvement hill climbing.
struct LocalSearchSolver;

impl Solver for LocalSearchSolver {
    fn name(&self) -> &'static str {
        "heur_local_search"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: true,
            cost_bound: true,
            exact: false,
            amortized_sweep: false,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| -> Result<_, ModelError> {
            let seed = power_greedy::solve(instance, options.cost_bound)?;
            local_search::solve(
                instance,
                &seed.placement,
                options.cost_bound,
                local_search::LocalSearchOptions::default(),
            )
        });
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }
}

/// Constructive heuristic polished by seeded simulated annealing.
struct AnnealingSolver;

impl Solver for AnnealingSolver {
    fn name(&self) -> &'static str {
        "heur_annealing"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::MinPower,
            multi_mode: true,
            pre_existing: true,
            cost_bound: true,
            exact: false,
            amortized_sweep: false,
        }
    }

    fn solve(
        &self,
        instance: &Instance,
        options: &SolveOptions,
    ) -> Result<SolveOutcome, EngineError> {
        let (result, wall) = timed(|| -> Result<_, ModelError> {
            let seed = power_greedy::solve(instance, options.cost_bound)?;
            annealing::solve(
                instance,
                &seed.placement,
                options.cost_bound,
                annealing::AnnealingOptions {
                    iterations: 5_000,
                    seed: options.seed,
                    ..Default::default()
                },
            )
        });
        evaluated_outcome(
            self.name(),
            instance,
            &result?.placement,
            ModePolicy::Assigned,
            wall,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replica_model::{ModeSet, PowerModel};
    use replica_tree::TreeBuilder;

    fn small_instance() -> Instance {
        let mut b = TreeBuilder::new();
        let r = b.root();
        let a = b.add_child(r);
        let c = b.add_child(r);
        b.add_client(a, 4);
        b.add_client(c, 5);
        b.add_client(r, 2);
        Instance::builder(b.build().unwrap())
            .modes(ModeSet::new(vec![5, 10]).unwrap())
            .power(PowerModel::new(1.0, 2.0))
            .build()
            .unwrap()
    }

    #[test]
    fn registry_registers_all_ten() {
        let registry = Registry::with_all();
        assert_eq!(registry.len(), 10);
        for name in [
            "greedy",
            "dp_mincost_nopre",
            "dp_mincost",
            "dp_power",
            "dp_power_full",
            "greedy_power",
            "exhaustive",
            "heur_power_greedy",
            "heur_local_search",
            "heur_annealing",
        ] {
            assert!(registry.get(name).is_some(), "{name} missing");
        }
        assert!(registry.get("nope").is_none());
    }

    #[test]
    fn every_supporting_solver_solves_the_small_instance() {
        let registry = Registry::with_all();
        let instance = small_instance();
        let options = SolveOptions::default();
        for solver in registry.iter() {
            if !solver.supports(&instance) {
                continue;
            }
            let outcome = solver
                .solve(&instance, &options)
                .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
            assert!(outcome.servers >= 1, "{}", solver.name());
            assert!(outcome.power > 0.0, "{}", solver.name());
        }
    }

    #[test]
    fn mincost_dp_rejects_multi_mode() {
        let registry = Registry::with_all();
        let instance = small_instance();
        assert!(!registry.get("dp_mincost").unwrap().supports(&instance));
        let err = registry
            .solve("dp_mincost", &instance, &SolveOptions::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn outcomes_are_model_reevaluated_and_agree_on_exact_solvers() {
        let registry = Registry::with_all();
        let instance = small_instance();
        let options = SolveOptions::default();
        let full = registry
            .solve("dp_power_full", &instance, &options)
            .unwrap();
        let pruned = registry.solve("dp_power", &instance, &options).unwrap();
        let oracle = registry.solve("exhaustive", &instance, &options).unwrap();
        assert!((full.power - oracle.power).abs() < 1e-9);
        assert!((pruned.power - oracle.power).abs() < 1e-9);
    }

    #[test]
    fn registration_replaces_same_name() {
        let mut registry = Registry::with_all();
        let before = registry.len();
        registry.register(Box::new(GreedySolver));
        assert_eq!(registry.len(), before);
    }

    #[test]
    fn sweep_capability_flag_agrees_with_the_sweep_hook() {
        let registry = Registry::with_all();
        let mut amortized = 0usize;
        for solver in registry.iter() {
            assert_eq!(
                solver.capabilities().amortized_sweep,
                solver.as_budget_sweep().is_some(),
                "{}: amortized_sweep flag out of sync",
                solver.name()
            );
            amortized += solver.capabilities().amortized_sweep as usize;
        }
        assert_eq!(
            amortized, 4,
            "dp_power, dp_power_full, greedy_power, exhaustive"
        );
    }

    #[test]
    fn native_sweep_matches_per_budget_solves() {
        let registry = Registry::with_all();
        let instance = small_instance();
        let options = SolveOptions::default();
        let budgets: Vec<f64> = (1..=12).map(f64::from).collect();
        for name in ["dp_power", "dp_power_full", "greedy_power", "exhaustive"] {
            let sweep = registry
                .sweep(name, &instance, &options, &budgets)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(sweep.amortized, "{name} advertises an amortized path");
            for &bound in &budgets {
                let amortized = sweep.frontier.best_within(bound).map(|p| p.power);
                let direct = registry
                    .solve(name, &instance, &SolveOptions::with_cost_bound(bound))
                    .ok()
                    .map(|o| o.power);
                match (amortized, direct) {
                    (Some(a), Some(d)) => assert!(
                        (a - d).abs() < 1e-9,
                        "{name} bound {bound}: frontier {a} vs direct {d}"
                    ),
                    (None, None) => {}
                    other => {
                        panic!("{name} bound {bound}: feasibility disagreement {other:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn fallback_sweep_adapts_non_sweep_solvers() {
        let registry = Registry::with_all();
        let instance = small_instance();
        let budgets: Vec<f64> = (1..=12).map(f64::from).collect();
        let sweep = registry
            .sweep(
                "heur_power_greedy",
                &instance,
                &SolveOptions::default(),
                &budgets,
            )
            .unwrap();
        assert!(!sweep.amortized, "heuristics have no amortized path");
        assert!(!sweep.frontier.is_empty());
        // The fallback frontier never beats the exact DP's.
        let exact = registry
            .sweep("dp_power", &instance, &SolveOptions::default(), &budgets)
            .unwrap();
        for &bound in &budgets {
            if let (Some(h), Some(e)) = (
                sweep.frontier.best_within(bound),
                exact.frontier.best_within(bound),
            ) {
                assert!(h.power >= e.power - 1e-9, "bound {bound}");
            }
        }
    }
}
