//! Output renderings of a [`FleetReport`]: ASCII tables, CSV and JSON,
//! each with a deterministic, timing-free variant suitable for
//! byte-level diffing between runs (and, through `replica-fleetd`,
//! between sharded and single-process executions).
//!
//! [`OutputFormat`] is also a field of the declarative campaign spec
//! ([`crate::spec::CampaignSpec`]): a spec names its preferred rendering
//! with the same labels the CLIs accept (`table`, `table-det`, `csv`,
//! `json`, `json-det`), and serializes as that label.
//!
//! The same five labels render trace forensics too:
//! [`render_analysis`] turns an [`Analysis`] (the digest `replica-obs`
//! computes from a parsed JSONL trace — phase profiles, slowest solves,
//! supervision timelines) into the matching report; the `-det` variants
//! drop every wall-clock-derived number so CI can byte-diff forensic
//! reports across runs.

use crate::fleet::{FleetReport, FleetSummary};
use crate::obs::{Analysis, AttemptEvent, SchedOp, ShardTimeline};
use crate::spec::{did_you_mean, SpecError};
use crate::stream::Stats;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fmt::Write as _;

/// A rendering of a fleet report, addressable by CLI/spec label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum OutputFormat {
    /// Aligned ASCII table, timing columns included (label `table`).
    #[default]
    Table,
    /// Aligned ASCII table, deterministic columns only (`table-det`).
    TableDeterministic,
    /// CSV, one row per `(scenario, solver)` group, P² percentile
    /// columns included; the timing columns come last (`csv`).
    Csv,
    /// Compact JSON document of the full report (`json`).
    Json,
    /// Compact JSON document without the timing fields — byte-diffable
    /// across runs and shardings (`json-det`).
    JsonDeterministic,
}

impl OutputFormat {
    /// Every format, in documentation order.
    pub const ALL: [OutputFormat; 5] = [
        OutputFormat::Table,
        OutputFormat::TableDeterministic,
        OutputFormat::Csv,
        OutputFormat::Json,
        OutputFormat::JsonDeterministic,
    ];

    /// The CLI/spec label of this format.
    pub fn label(self) -> &'static str {
        match self {
            OutputFormat::Table => "table",
            OutputFormat::TableDeterministic => "table-det",
            OutputFormat::Csv => "csv",
            OutputFormat::Json => "json",
            OutputFormat::JsonDeterministic => "json-det",
        }
    }

    /// Parses a CLI/spec format label, with a nearest-name suggestion on
    /// a miss.
    pub fn parse(name: &str) -> Result<OutputFormat, SpecError> {
        OutputFormat::ALL
            .into_iter()
            .find(|f| f.label() == name)
            .ok_or_else(|| SpecError::UnknownFormat {
                got: name.to_string(),
                suggestion: did_you_mean(name, OutputFormat::ALL.iter().map(|f| f.label()))
                    .map(str::to_string),
            })
    }
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<OutputFormat> for String {
    fn from(format: OutputFormat) -> String {
        format.label().to_string()
    }
}

impl TryFrom<String> for OutputFormat {
    type Error = SpecError;

    fn try_from(name: String) -> Result<OutputFormat, SpecError> {
        OutputFormat::parse(&name)
    }
}

/// Renders `report` in the requested format.
pub fn render(report: &FleetReport, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => report.table(),
        OutputFormat::TableDeterministic => report.table_deterministic(),
        OutputFormat::Csv => csv(report),
        OutputFormat::Json => json(report, true),
        OutputFormat::JsonDeterministic => json(report, false),
    }
}

/// CSV rendering: every deterministic aggregate — including the P²
/// p50/p90 percentile columns for power, cost and gap — then the
/// non-deterministic timing columns last.
pub fn csv(report: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario,solver,solved,failed,unsupported,\
         power_mean,power_p50,power_p90,power_min,power_max,\
         cost_mean,cost_p50,cost_p90,\
         servers_mean,gap_mean,gap_p50,gap_p90,\
         ms_per_solve,ms_p90,speedup_vs_ref\n",
    );
    for s in &report.summaries {
        let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.6}"));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{},{},{},{:.4},{:.4},{}",
            s.scenario,
            s.solver,
            s.solved,
            s.failed,
            s.unsupported,
            s.power.mean,
            s.power.p50,
            s.power.p90,
            s.power.min,
            s.power.max,
            s.cost.mean,
            s.cost.p50,
            s.cost.p90,
            s.mean_servers,
            opt(s.power_gap_vs_ref),
            opt(s.gap_vs_ref.map(|g| g.p50)),
            opt(s.gap_vs_ref.map(|g| g.p90)),
            s.mean_wall_seconds * 1e3,
            s.wall.p90 * 1e3,
            opt(s.speedup_vs_ref),
        );
    }
    out
}

/// Serializable mirror of one summary row.
#[derive(Serialize)]
struct SummaryDoc {
    scenario: String,
    solver: String,
    solved: usize,
    failed: usize,
    unsupported: usize,
    cost: Stats,
    power: Stats,
    mean_servers: f64,
    power_gap_vs_ref: Option<f64>,
    gap_vs_ref: Option<Stats>,
    mean_wall_seconds: Option<f64>,
    wall: Option<Stats>,
    speedup_vs_ref: Option<f64>,
    speedup_dist: Option<Stats>,
}

/// Serializable mirror of a report.
#[derive(Serialize)]
struct ReportDoc {
    cell_count: usize,
    cell_checksum: String,
    summaries: Vec<SummaryDoc>,
}

/// Compact JSON; `timing = false` drops every wall-clock-derived field,
/// making the document a pure function of the fleet seed.
pub fn json(report: &FleetReport, timing: bool) -> String {
    let doc = ReportDoc {
        cell_count: report.cell_count,
        cell_checksum: format!("{:016x}", report.cell_checksum),
        summaries: report.summaries.iter().map(|s| doc_of(s, timing)).collect(),
    };
    serde_json::to_string(&doc).expect("report serialization cannot fail")
}

fn doc_of(s: &FleetSummary, timing: bool) -> SummaryDoc {
    SummaryDoc {
        scenario: s.scenario.clone(),
        solver: s.solver.to_string(),
        solved: s.solved,
        failed: s.failed,
        unsupported: s.unsupported,
        cost: s.cost,
        power: s.power,
        mean_servers: s.mean_servers,
        power_gap_vs_ref: s.power_gap_vs_ref,
        gap_vs_ref: s.gap_vs_ref,
        mean_wall_seconds: timing.then_some(s.mean_wall_seconds),
        wall: timing.then_some(s.wall),
        speedup_vs_ref: if timing { s.speedup_vs_ref } else { None },
        speedup_dist: if timing { s.speedup_dist } else { None },
    }
}

// ---------------------------------------------------------------------------
// Trace forensics rendering
// ---------------------------------------------------------------------------

/// Renders a trace [`Analysis`] in the requested format. The `-det`
/// variants omit every wall-clock-derived number (span durations,
/// timestamps, backoff gates, throughput, slot occupancy) and put the
/// supervision timeline into canonical `(attempt, op)` order, so two
/// runs of the same deterministic fault schedule render byte-identical
/// reports.
pub fn render_analysis(analysis: &Analysis, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => analysis_table(analysis, true),
        OutputFormat::TableDeterministic => analysis_table(analysis, false),
        OutputFormat::Csv => analysis_csv(analysis),
        OutputFormat::Json => analysis_json(analysis, true),
        OutputFormat::JsonDeterministic => analysis_json(analysis, false),
    }
}

/// The rank of `op` in [`SchedOp::ALL`] — the canonical within-attempt
/// event order (claim before launch/steal before settle).
fn op_rank(op: SchedOp) -> usize {
    SchedOp::ALL
        .iter()
        .position(|o| *o == op)
        .unwrap_or(usize::MAX)
}

/// A shard's events for rendering: trace order with timing, canonical
/// `(attempt, op)` order without (wall-clock interleaving across shards
/// must not leak into a deterministic report).
fn timeline_events(shard: &ShardTimeline, timing: bool) -> Vec<AttemptEvent> {
    let mut events = shard.events.clone();
    if !timing {
        events.sort_by_key(|e| (e.attempt, op_rank(e.op)));
    }
    events
}

fn timeline_entry(event: &AttemptEvent, timing: bool) -> String {
    let mut entry = format!("a{} {}", event.attempt, event.op);
    if timing {
        if let Some(gate) = event.not_before_ms {
            let _ = write!(entry, "(not before {gate}ms)");
        }
    }
    entry
}

fn outcome_label(outcome: Option<SchedOp>) -> &'static str {
    match outcome {
        Some(SchedOp::Done) => "done",
        Some(SchedOp::Exhausted) => "exhausted",
        _ => "in-flight",
    }
}

fn analysis_table(analysis: &Analysis, timing: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace      {} lines parsed, {} malformed, {} unmatched span(s)",
        analysis.parsed_lines,
        analysis.malformed.len(),
        analysis.unmatched_spans
    );
    let kinds: Vec<String> = analysis
        .kind_counts
        .iter()
        .map(|(kind, n)| format!("{kind}={n}"))
        .collect();
    let _ = writeln!(out, "events     {}", kinds.join(" "));
    for error in &analysis.malformed {
        let _ = writeln!(out, "  ! {error}");
    }

    if !analysis.phases.is_empty() {
        out.push_str("\nphase profile\n");
        if timing {
            let _ = writeln!(
                out,
                "  {:<14} {:>7} {:>6} {:>12} {:>12}",
                "phase", "count", "open", "total_ms", "self_ms"
            );
            let mut phases: Vec<_> = analysis.phases.iter().collect();
            phases.sort_by(|a, b| {
                b.total_micros
                    .cmp(&a.total_micros)
                    .then_with(|| a.name.cmp(&b.name))
            });
            for p in phases {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>7} {:>6} {:>12.3} {:>12.3}",
                    p.name,
                    p.count,
                    p.open,
                    p.total_micros as f64 / 1e3,
                    p.self_micros as f64 / 1e3
                );
            }
        } else {
            let _ = writeln!(out, "  {:<14} {:>7} {:>6}", "phase", "count", "open");
            for p in &analysis.phases {
                let _ = writeln!(out, "  {:<14} {:>7} {:>6}", p.name, p.count, p.open);
            }
        }
    }

    if timing && !analysis.slowest.is_empty() {
        out.push_str("\nslowest solves\n");
        let _ = writeln!(out, "  {:>4} {:>12} {:<8} label", "rank", "ms", "where");
        for (i, solve) in analysis.slowest.iter().enumerate() {
            let place = solve
                .provenance
                .map_or("-".to_string(), |(s, a)| format!("{s}/a{a}"));
            let _ = writeln!(
                out,
                "  {:>4} {:>12.3} {:<8} {}",
                i + 1,
                solve.micros as f64 / 1e3,
                place,
                solve.label
            );
        }
    }

    if !analysis.sched.is_empty() {
        out.push_str("\nsupervision\n");
        let _ = writeln!(
            out,
            "  {:>5} {:>8} {:>7} {:>6} {:>11} {:>6}  outcome",
            "shard", "launches", "retries", "steals", "stale-kills", "fenced"
        );
        for shard in &analysis.sched.shards {
            let _ = writeln!(
                out,
                "  {:>5} {:>8} {:>7} {:>6} {:>11} {:>6}  {}",
                shard.shard,
                shard.launches,
                shard.retries,
                shard.steals,
                shard.stale_kills,
                shard.fence_rejects,
                outcome_label(shard.outcome)
            );
        }
        out.push_str("  timeline\n");
        for shard in &analysis.sched.shards {
            let entries: Vec<String> = timeline_events(shard, timing)
                .iter()
                .map(|e| timeline_entry(e, timing))
                .collect();
            let _ = writeln!(out, "    shard {}: {}", shard.shard, entries.join(", "));
        }
        if timing {
            if let Some(util) = &analysis.sched.utilization {
                let _ = writeln!(
                    out,
                    "  slots      peak {}, avg {:.2}, busy {} ms over {} ms",
                    util.max_concurrent, util.avg_concurrent, util.busy_ms, util.window_ms
                );
            }
        }
    }

    if !analysis.counters.is_empty() {
        out.push_str("\ncounters\n");
        for (name, value) in &analysis.counters {
            let _ = writeln!(out, "  {name:<24} {value}");
        }
    }

    if !analysis.histograms.is_empty() {
        out.push_str("\nhistograms\n");
        if timing {
            let _ = writeln!(
                out,
                "  {:<40} {:>5} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "name", "unit", "count", "mean", "p50", "p90", "p99"
            );
            for h in &analysis.histograms {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>5} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    h.name,
                    h.unit,
                    h.stats.count,
                    h.stats.mean,
                    h.stats.p50,
                    h.stats.p90,
                    h.stats.p99
                );
            }
        } else {
            let _ = writeln!(out, "  {:<40} {:>5} {:>7}", "name", "unit", "count");
            for h in &analysis.histograms {
                let _ = writeln!(out, "  {:<40} {:>5} {:>7}", h.name, h.unit, h.stats.count);
            }
        }
    }

    if timing && !analysis.throughput.is_empty() {
        let last = &analysis.throughput[analysis.throughput.len() - 1];
        let peak = analysis
            .throughput
            .iter()
            .map(|p| p.jobs_per_sec)
            .fold(0.0_f64, f64::max);
        let _ = writeln!(
            out,
            "\nthroughput {} points, last {}/{} jobs, peak {:.1} jobs/s",
            analysis.throughput.len(),
            last.done,
            last.total,
            peak
        );
    }
    out
}

/// Long-format CSV: `section,key,field,value` rows covering every
/// section of the forensic report (timing fields included — CSV has no
/// `-det` variant, matching the fleet-report convention that timing
/// columns are part of `csv`).
fn analysis_csv(analysis: &Analysis) -> String {
    let mut out = String::from("section,key,field,value\n");
    let mut row = |section: &str, key: &str, field: &str, value: String| {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            quote(section),
            quote(key),
            quote(field),
            quote(&value)
        ));
    };
    row(
        "trace",
        "lines",
        "parsed",
        analysis.parsed_lines.to_string(),
    );
    row(
        "trace",
        "lines",
        "malformed",
        analysis.malformed.len().to_string(),
    );
    row(
        "trace",
        "spans",
        "unmatched",
        analysis.unmatched_spans.to_string(),
    );
    for (kind, n) in &analysis.kind_counts {
        row("events", kind, "count", n.to_string());
    }
    for p in &analysis.phases {
        row("phase", &p.name, "count", p.count.to_string());
        row("phase", &p.name, "open", p.open.to_string());
        row("phase", &p.name, "total_micros", p.total_micros.to_string());
        row("phase", &p.name, "self_micros", p.self_micros.to_string());
    }
    for (i, solve) in analysis.slowest.iter().enumerate() {
        let key = (i + 1).to_string();
        row("slowest", &key, "label", solve.label.clone());
        row("slowest", &key, "micros", solve.micros.to_string());
    }
    for (name, value) in &analysis.counters {
        row("counter", name, "value", value.to_string());
    }
    for shard in &analysis.sched.shards {
        let key = shard.shard.to_string();
        row("shard", &key, "launches", shard.launches.to_string());
        row("shard", &key, "retries", shard.retries.to_string());
        row("shard", &key, "steals", shard.steals.to_string());
        row("shard", &key, "stale_kills", shard.stale_kills.to_string());
        row(
            "shard",
            &key,
            "fence_rejects",
            shard.fence_rejects.to_string(),
        );
        row(
            "shard",
            &key,
            "outcome",
            outcome_label(shard.outcome).to_string(),
        );
        for (i, event) in shard.events.iter().enumerate() {
            row(
                "timeline",
                &key,
                &i.to_string(),
                timeline_entry(event, true),
            );
        }
    }
    for p in &analysis.throughput {
        row(
            "throughput",
            &p.done.to_string(),
            "jobs_per_sec",
            format!("{:.3}", p.jobs_per_sec),
        );
    }
    out
}

fn analysis_json(analysis: &Analysis, timing: bool) -> String {
    let object = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let int = |n: usize| Value::Int(n as i128);
    let opt_u64 = |v: Option<u64>| v.map_or(Value::Null, |n| Value::Int(n as i128));
    let phases = analysis
        .phases
        .iter()
        .map(|p| {
            object(vec![
                ("name", Value::Str(p.name.clone())),
                ("count", int(p.count)),
                ("open", int(p.open)),
                (
                    "total_micros",
                    if timing {
                        Value::Int(p.total_micros as i128)
                    } else {
                        Value::Null
                    },
                ),
                (
                    "self_micros",
                    if timing {
                        Value::Int(p.self_micros as i128)
                    } else {
                        Value::Null
                    },
                ),
            ])
        })
        .collect();
    // Ranked-by-duration sections are wall-clock-derived through and
    // through; the det document keeps the keys but empties them.
    let slowest = if timing {
        analysis
            .slowest
            .iter()
            .map(|s| {
                object(vec![
                    ("label", Value::Str(s.label.clone())),
                    ("micros", Value::Int(s.micros as i128)),
                    ("shard", opt_u64(s.provenance.map(|(sh, _)| sh as u64))),
                    ("attempt", opt_u64(s.provenance.map(|(_, a)| a as u64))),
                ])
            })
            .collect()
    } else {
        Vec::new()
    };
    let throughput = if timing {
        analysis
            .throughput
            .iter()
            .map(|p| {
                object(vec![
                    ("done", int(p.done)),
                    ("total", int(p.total)),
                    ("jobs_per_sec", Value::Float(p.jobs_per_sec)),
                ])
            })
            .collect()
    } else {
        Vec::new()
    };
    let histograms = analysis
        .histograms
        .iter()
        .map(|h| {
            let mut fields = vec![
                ("name", Value::Str(h.name.clone())),
                ("unit", Value::Str(h.unit.clone())),
                ("count", int(h.stats.count)),
            ];
            if timing {
                fields.push(("mean", Value::Float(h.stats.mean)));
                fields.push(("p50", Value::Float(h.stats.p50)));
                fields.push(("p90", Value::Float(h.stats.p90)));
                fields.push(("p99", Value::Float(h.stats.p99)));
            }
            object(fields)
        })
        .collect();
    let shards = analysis
        .sched
        .shards
        .iter()
        .map(|shard| {
            let timeline = timeline_events(shard, timing)
                .iter()
                .map(|e| {
                    let mut fields = vec![
                        ("attempt", int(e.attempt)),
                        ("op", Value::Str(e.op.to_string())),
                    ];
                    if timing {
                        fields.push(("not_before_ms", opt_u64(e.not_before_ms)));
                        fields.push(("ts_ms", opt_u64(e.ts_ms)));
                    }
                    object(fields)
                })
                .collect();
            object(vec![
                ("shard", int(shard.shard)),
                ("launches", int(shard.launches)),
                ("retries", int(shard.retries)),
                ("steals", int(shard.steals)),
                ("stale_kills", int(shard.stale_kills)),
                ("fence_rejects", int(shard.fence_rejects)),
                (
                    "outcome",
                    Value::Str(outcome_label(shard.outcome).to_string()),
                ),
                ("timeline", Value::Array(timeline)),
            ])
        })
        .collect();
    let utilization = match (&analysis.sched.utilization, timing) {
        (Some(util), true) => object(vec![
            ("max_concurrent", int(util.max_concurrent)),
            ("avg_concurrent", Value::Float(util.avg_concurrent)),
            ("busy_ms", Value::Int(util.busy_ms as i128)),
            ("window_ms", Value::Int(util.window_ms as i128)),
        ]),
        _ => Value::Null,
    };
    let doc = object(vec![
        ("parsed_lines", int(analysis.parsed_lines)),
        (
            "malformed",
            Value::Array(
                analysis
                    .malformed
                    .iter()
                    .map(|e| Value::Str(e.clone()))
                    .collect(),
            ),
        ),
        (
            "events",
            Value::Object(
                analysis
                    .kind_counts
                    .iter()
                    .map(|(kind, n)| (kind.clone(), int(*n)))
                    .collect(),
            ),
        ),
        ("unmatched_spans", int(analysis.unmatched_spans)),
        ("phases", Value::Array(phases)),
        ("slowest_solves", Value::Array(slowest)),
        ("batches", int(analysis.batches.len())),
        ("throughput", Value::Array(throughput)),
        (
            "counters",
            Value::Object(
                analysis
                    .counters
                    .iter()
                    .map(|(name, value)| (name.clone(), Value::Int(*value as i128)))
                    .collect(),
            ),
        ),
        ("histograms", Value::Array(histograms)),
        (
            "sched",
            object(vec![
                (
                    "ops",
                    Value::Object(
                        analysis
                            .sched
                            .op_totals
                            .iter()
                            .map(|(op, n)| (op.to_string(), int(*n)))
                            .collect(),
                    ),
                ),
                ("shards", Value::Array(shards)),
                ("utilization", utilization),
            ]),
        ),
    ]);
    serde_json::to_string(&doc).expect("analysis serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::registry::Registry;
    use crate::scenarios::{Demand, Scenario, Topology};

    fn report() -> FleetReport {
        let registry = Registry::with_all();
        let scenarios = vec![
            Scenario::new(Topology::High, Demand::Uniform, 12),
            Scenario::new(Topology::Star, Demand::Skewed, 12),
        ];
        let config = FleetConfig {
            solvers: vec!["dp_power".into(), "greedy_power".into()],
            ..Default::default()
        };
        let jobs = Fleet::jobs_from_scenarios(&scenarios, 2, 2);
        Fleet::new(&registry, config).run(&jobs)
    }

    #[test]
    fn formats_parse_and_render() {
        let report = report();
        for (name, needle) in [
            ("table", "ms/solve"),
            ("table-det", "gap_vs_ref"),
            ("csv", "power_p50"),
            ("json", "cell_checksum"),
            ("json-det", "cell_checksum"),
        ] {
            let format = OutputFormat::parse(name).unwrap();
            assert_eq!(format.label(), name, "label round-trips");
            let text = render(&report, format);
            assert!(text.contains(needle), "{name} must contain {needle}");
        }
        match OutputFormat::parse("tabel") {
            Err(SpecError::UnknownFormat { got, suggestion }) => {
                assert_eq!(got, "tabel");
                assert_eq!(suggestion.as_deref(), Some("table"));
            }
            other => panic!("expected UnknownFormat, got {other:?}"),
        }
        assert!(OutputFormat::parse("yaml").is_err());
    }

    #[test]
    fn format_serde_uses_cli_labels() {
        let json = serde_json::to_string(&OutputFormat::JsonDeterministic).unwrap();
        assert_eq!(json, "\"json-det\"");
        let back: OutputFormat = serde_json::from_str(&json).unwrap();
        assert_eq!(back, OutputFormat::JsonDeterministic);
        assert!(serde_json::from_str::<OutputFormat>("\"nope\"").is_err());
    }

    #[test]
    fn deterministic_json_has_no_timing() {
        let report = report();
        let det = render(&report, OutputFormat::JsonDeterministic);
        assert!(!det.contains("mean_wall_seconds\":0."), "no wall values");
        assert!(det.contains("\"mean_wall_seconds\":null"));
        let full = render(&report, OutputFormat::Json);
        assert!(full.contains("\"mean_wall_seconds\":"));
    }

    #[test]
    fn csv_has_one_row_per_group_plus_header() {
        let report = report();
        let csv = render(&report, OutputFormat::Csv);
        assert_eq!(csv.lines().count(), 1 + report.summaries.len());
        assert!(csv.starts_with("scenario,solver"));
    }

    fn forensic_analysis() -> Analysis {
        use crate::obs::{Event, SchedOp, Trace};
        let sched = |op, shard, attempt, ts| {
            Event::Sched {
                op,
                shard,
                attempt,
                not_before_ms: (op == SchedOp::Retry).then_some(ts + 100),
            }
            .to_json_line(Some(ts))
        };
        let text = [
            sched(SchedOp::Claim, 0, 0, 10),
            sched(SchedOp::Launch, 0, 0, 10),
            sched(SchedOp::Retry, 0, 0, 60),
            sched(SchedOp::Claim, 1, 0, 70),
            sched(SchedOp::Steal, 1, 0, 70),
            sched(SchedOp::Done, 1, 0, 200),
            sched(SchedOp::Claim, 0, 1, 210),
            sched(SchedOp::Launch, 0, 1, 210),
            sched(SchedOp::Done, 0, 1, 400),
            Event::ShardSegment {
                shard: 0,
                attempt: 1,
            }
            .to_json_line(Some(400)),
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "solve".into(),
                label: "high/uniform-12#0 dp_power".into(),
            }
            .to_json_line(Some(401)),
            Event::SpanEnd {
                id: 1,
                name: "solve".into(),
                label: "high/uniform-12#0 dp_power".into(),
                micros: 1234,
            }
            .to_json_line(Some(402)),
            Event::Counter {
                name: "cells_solved".into(),
                value: 4,
            }
            .to_json_line(Some(402)),
        ]
        .join("\n");
        Analysis::of(&Trace::parse(&text))
    }

    #[test]
    fn analysis_renders_in_every_format() {
        let analysis = forensic_analysis();
        for (name, needle) in [
            ("table", "supervision"),
            ("table-det", "supervision"),
            ("csv", "section,key,field,value"),
            ("json", "\"sched\":"),
            ("json-det", "\"sched\":"),
        ] {
            let text = render_analysis(&analysis, OutputFormat::parse(name).unwrap());
            assert!(text.contains(needle), "{name} must contain {needle}");
        }
        let table = render_analysis(&analysis, OutputFormat::Table);
        assert!(table.contains("slowest solves"), "{table}");
        assert!(table.contains("a0 retry(not before 160ms)"), "{table}");
        assert!(table.contains("a0 steal"), "{table}");
        assert!(table.contains("slots      peak"), "{table}");
    }

    #[test]
    fn deterministic_analysis_report_is_timing_free() {
        let analysis = forensic_analysis();
        let det = render_analysis(&analysis, OutputFormat::TableDeterministic);
        assert!(!det.contains("ms"), "no milliseconds anywhere: {det}");
        assert!(!det.contains("slowest"), "{det}");
        assert!(det.contains("a0 retry, a1 claim"), "canonical order: {det}");
        let det_json = render_analysis(&analysis, OutputFormat::JsonDeterministic);
        assert!(!det_json.contains("micros\":1"), "{det_json}");
        assert!(!det_json.contains("ts_ms"), "{det_json}");
        assert!(det_json.contains("\"utilization\":null"), "{det_json}");
        // Same analysis → byte-identical det renderings.
        assert_eq!(
            det_json,
            render_analysis(&forensic_analysis(), OutputFormat::JsonDeterministic)
        );
    }
}
