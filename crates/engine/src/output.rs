//! Output renderings of a [`FleetReport`]: ASCII tables, CSV and JSON,
//! each with a deterministic, timing-free variant suitable for
//! byte-level diffing between runs (and, through `replica-fleetd`,
//! between sharded and single-process executions).
//!
//! [`OutputFormat`] is also a field of the declarative campaign spec
//! ([`crate::spec::CampaignSpec`]): a spec names its preferred rendering
//! with the same labels the CLIs accept (`table`, `table-det`, `csv`,
//! `json`, `json-det`), and serializes as that label.

use crate::fleet::{FleetReport, FleetSummary};
use crate::spec::{did_you_mean, SpecError};
use crate::stream::Stats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// A rendering of a fleet report, addressable by CLI/spec label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum OutputFormat {
    /// Aligned ASCII table, timing columns included (label `table`).
    #[default]
    Table,
    /// Aligned ASCII table, deterministic columns only (`table-det`).
    TableDeterministic,
    /// CSV, one row per `(scenario, solver)` group, P² percentile
    /// columns included; the timing columns come last (`csv`).
    Csv,
    /// Compact JSON document of the full report (`json`).
    Json,
    /// Compact JSON document without the timing fields — byte-diffable
    /// across runs and shardings (`json-det`).
    JsonDeterministic,
}

impl OutputFormat {
    /// Every format, in documentation order.
    pub const ALL: [OutputFormat; 5] = [
        OutputFormat::Table,
        OutputFormat::TableDeterministic,
        OutputFormat::Csv,
        OutputFormat::Json,
        OutputFormat::JsonDeterministic,
    ];

    /// The CLI/spec label of this format.
    pub fn label(self) -> &'static str {
        match self {
            OutputFormat::Table => "table",
            OutputFormat::TableDeterministic => "table-det",
            OutputFormat::Csv => "csv",
            OutputFormat::Json => "json",
            OutputFormat::JsonDeterministic => "json-det",
        }
    }

    /// Parses a CLI/spec format label, with a nearest-name suggestion on
    /// a miss.
    pub fn parse(name: &str) -> Result<OutputFormat, SpecError> {
        OutputFormat::ALL
            .into_iter()
            .find(|f| f.label() == name)
            .ok_or_else(|| SpecError::UnknownFormat {
                got: name.to_string(),
                suggestion: did_you_mean(name, OutputFormat::ALL.iter().map(|f| f.label()))
                    .map(str::to_string),
            })
    }
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<OutputFormat> for String {
    fn from(format: OutputFormat) -> String {
        format.label().to_string()
    }
}

impl TryFrom<String> for OutputFormat {
    type Error = SpecError;

    fn try_from(name: String) -> Result<OutputFormat, SpecError> {
        OutputFormat::parse(&name)
    }
}

/// Renders `report` in the requested format.
pub fn render(report: &FleetReport, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => report.table(),
        OutputFormat::TableDeterministic => report.table_deterministic(),
        OutputFormat::Csv => csv(report),
        OutputFormat::Json => json(report, true),
        OutputFormat::JsonDeterministic => json(report, false),
    }
}

/// CSV rendering: every deterministic aggregate — including the P²
/// p50/p90 percentile columns for power, cost and gap — then the
/// non-deterministic timing columns last.
pub fn csv(report: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario,solver,solved,failed,unsupported,\
         power_mean,power_p50,power_p90,power_min,power_max,\
         cost_mean,cost_p50,cost_p90,\
         servers_mean,gap_mean,gap_p50,gap_p90,\
         ms_per_solve,ms_p90,speedup_vs_ref\n",
    );
    for s in &report.summaries {
        let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.6}"));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{},{},{},{:.4},{:.4},{}",
            s.scenario,
            s.solver,
            s.solved,
            s.failed,
            s.unsupported,
            s.power.mean,
            s.power.p50,
            s.power.p90,
            s.power.min,
            s.power.max,
            s.cost.mean,
            s.cost.p50,
            s.cost.p90,
            s.mean_servers,
            opt(s.power_gap_vs_ref),
            opt(s.gap_vs_ref.map(|g| g.p50)),
            opt(s.gap_vs_ref.map(|g| g.p90)),
            s.mean_wall_seconds * 1e3,
            s.wall.p90 * 1e3,
            opt(s.speedup_vs_ref),
        );
    }
    out
}

/// Serializable mirror of one summary row.
#[derive(Serialize)]
struct SummaryDoc {
    scenario: String,
    solver: String,
    solved: usize,
    failed: usize,
    unsupported: usize,
    cost: Stats,
    power: Stats,
    mean_servers: f64,
    power_gap_vs_ref: Option<f64>,
    gap_vs_ref: Option<Stats>,
    mean_wall_seconds: Option<f64>,
    wall: Option<Stats>,
    speedup_vs_ref: Option<f64>,
    speedup_dist: Option<Stats>,
}

/// Serializable mirror of a report.
#[derive(Serialize)]
struct ReportDoc {
    cell_count: usize,
    cell_checksum: String,
    summaries: Vec<SummaryDoc>,
}

/// Compact JSON; `timing = false` drops every wall-clock-derived field,
/// making the document a pure function of the fleet seed.
pub fn json(report: &FleetReport, timing: bool) -> String {
    let doc = ReportDoc {
        cell_count: report.cell_count,
        cell_checksum: format!("{:016x}", report.cell_checksum),
        summaries: report.summaries.iter().map(|s| doc_of(s, timing)).collect(),
    };
    serde_json::to_string(&doc).expect("report serialization cannot fail")
}

fn doc_of(s: &FleetSummary, timing: bool) -> SummaryDoc {
    SummaryDoc {
        scenario: s.scenario.clone(),
        solver: s.solver.to_string(),
        solved: s.solved,
        failed: s.failed,
        unsupported: s.unsupported,
        cost: s.cost,
        power: s.power,
        mean_servers: s.mean_servers,
        power_gap_vs_ref: s.power_gap_vs_ref,
        gap_vs_ref: s.gap_vs_ref,
        mean_wall_seconds: timing.then_some(s.mean_wall_seconds),
        wall: timing.then_some(s.wall),
        speedup_vs_ref: if timing { s.speedup_vs_ref } else { None },
        speedup_dist: if timing { s.speedup_dist } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::registry::Registry;
    use crate::scenarios::{Demand, Scenario, Topology};

    fn report() -> FleetReport {
        let registry = Registry::with_all();
        let scenarios = vec![
            Scenario::new(Topology::High, Demand::Uniform, 12),
            Scenario::new(Topology::Star, Demand::Skewed, 12),
        ];
        let config = FleetConfig {
            solvers: vec!["dp_power".into(), "greedy_power".into()],
            ..Default::default()
        };
        let jobs = Fleet::jobs_from_scenarios(&scenarios, 2, 2);
        Fleet::new(&registry, config).run(&jobs)
    }

    #[test]
    fn formats_parse_and_render() {
        let report = report();
        for (name, needle) in [
            ("table", "ms/solve"),
            ("table-det", "gap_vs_ref"),
            ("csv", "power_p50"),
            ("json", "cell_checksum"),
            ("json-det", "cell_checksum"),
        ] {
            let format = OutputFormat::parse(name).unwrap();
            assert_eq!(format.label(), name, "label round-trips");
            let text = render(&report, format);
            assert!(text.contains(needle), "{name} must contain {needle}");
        }
        match OutputFormat::parse("tabel") {
            Err(SpecError::UnknownFormat { got, suggestion }) => {
                assert_eq!(got, "tabel");
                assert_eq!(suggestion.as_deref(), Some("table"));
            }
            other => panic!("expected UnknownFormat, got {other:?}"),
        }
        assert!(OutputFormat::parse("yaml").is_err());
    }

    #[test]
    fn format_serde_uses_cli_labels() {
        let json = serde_json::to_string(&OutputFormat::JsonDeterministic).unwrap();
        assert_eq!(json, "\"json-det\"");
        let back: OutputFormat = serde_json::from_str(&json).unwrap();
        assert_eq!(back, OutputFormat::JsonDeterministic);
        assert!(serde_json::from_str::<OutputFormat>("\"nope\"").is_err());
    }

    #[test]
    fn deterministic_json_has_no_timing() {
        let report = report();
        let det = render(&report, OutputFormat::JsonDeterministic);
        assert!(!det.contains("mean_wall_seconds\":0."), "no wall values");
        assert!(det.contains("\"mean_wall_seconds\":null"));
        let full = render(&report, OutputFormat::Json);
        assert!(full.contains("\"mean_wall_seconds\":"));
    }

    #[test]
    fn csv_has_one_row_per_group_plus_header() {
        let report = report();
        let csv = render(&report, OutputFormat::Csv);
        assert_eq!(csv.lines().count(), 1 + report.summaries.len());
        assert!(csv.starts_with("scenario,solver"));
    }
}
