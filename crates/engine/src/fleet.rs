//! The parallel scenario-fleet runner, with streaming aggregation.
//!
//! A [`Fleet`] evaluates a batch of labelled instances against a set of
//! registered solvers — the cartesian product `instances × solvers` — in
//! parallel with rayon, and folds every outcome into per-`(scenario,
//! solver)` online accumulators ([`crate::stream`]) the moment it is
//! produced: cost/power/gap distributions (count, mean, min, max, P²
//! p50/p90), server counts, wall-clock means, and speedups against a
//! reference solver (the exact DP by default). The full cell matrix is
//! **never materialized** — peak memory is bounded by one batch of jobs
//! ([`FleetConfig::batch_jobs`] × solver count) plus the fixed-size
//! accumulators, so fleets scale past what `instances × solvers` cells
//! would fit in memory. Callers who want the raw per-cell stream tap it
//! via [`Fleet::run_with_observer`].
//!
//! Determinism: per-instance solver seeds derive from the fleet seed via
//! [`seeding::mix`]; jobs are solved in parallel batch by batch, but each
//! batch's results come back in job order and are folded **sequentially in
//! that order** — so every aggregate (including the quantile sketches) and
//! the per-cell checksum are byte-identical across runs and across thread
//! counts. [`FleetReport::digest`] exposes exactly the deterministic
//! portion; the determinism suite pins it.
//!
//! Job generation is **lazy and indexed**: the runner's primary currency
//! is a [`JobSpace`] — `index → FleetJob`, a pure function of the global
//! job index — and each streaming batch's jobs are constructed on demand
//! and dropped with the batch. Running a range of the space therefore
//! costs `O(range)` in both generation time and peak memory, not
//! `O(campaign)`. The historical `&[FleetJob]` entry points remain as
//! thin adapters (a slice is itself a trivial `JobSpace`).
//!
//! Sharding (the `replica-fleetd` seams): [`Fleet::run_space_shard_with_observer`]
//! runs one contiguous job range with the *global* per-job seeding, so a
//! shard worker produces exactly the cells the full run would — while
//! constructing only that range's jobs;
//! [`Fleet::run_space_shard_recorded`] additionally snapshots mergeable
//! per-group state ([`GroupState`]); and [`FleetFold`] is the
//! coordinator-side fold target that replays shard cell streams — in
//! shard order — into a report byte-identical to a single-process
//! [`Fleet::run`].

use crate::jobspace::{JobSpace, ScenarioSpace};
use crate::registry::Registry;
use crate::scenarios::Scenario;
use crate::seeding;
use crate::solver::{SolveOptions, Solver};
use crate::spec::SpecError;
use crate::stream::{MetricAccumulator, MetricSink, RecordedMetric, Stats};
use rayon::prelude::*;
use replica_model::Instance;
use replica_obs::{Obs, Span};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cooperative cancellation flag for in-flight fleet runs.
///
/// Supervisors (e.g. `replica-fleetd`'s fault-tolerant scheduler) hand a
/// clone to a running shard and [`cancel`](CancelToken::cancel) it when
/// the work is no longer wanted — a dead sibling shard exhausted its
/// retries, a fault injector simulates a mid-shard kill, the whole
/// campaign is being torn down. The runner checks the token **between
/// streaming batches** (the natural safe point: a batch's results are
/// folded atomically or not at all), so cancellation never produces a
/// partial fold — a cancelled run returns `None`, not a half-aggregated
/// report that could silently corrupt a merge.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One labelled instance of a fleet.
#[derive(Clone)]
pub struct FleetJob {
    /// Scenario (grouping) label.
    pub scenario: String,
    /// Index within the scenario (also the seed stream of the instance).
    pub index: usize,
    /// The instance itself.
    pub instance: Instance,
}

/// Configuration of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Solver names to evaluate (must exist in the registry).
    pub solvers: Vec<String>,
    /// Options handed to every solve (the per-instance seed is derived
    /// from [`FleetConfig::seed`], overriding `options.seed`).
    pub options: SolveOptions,
    /// Fleet seed: drives per-instance solver seeds.
    pub seed: u64,
    /// Reference solver for gap/speedup columns (defaults to `dp_power`
    /// when present among [`FleetConfig::solvers`], then `dp_power_full`).
    pub reference: Option<String>,
    /// Worker-thread override (`None` = machine default). Results are
    /// identical for every value; only wall-clock changes.
    pub threads: Option<usize>,
    /// Jobs solved in parallel per streaming batch: the peak-memory knob.
    /// Results are identical for every valid value; only scheduling
    /// granularity changes. Must be at least 1 — [`Fleet::new`] rejects
    /// `0` as a configuration error (a zero-job batch cannot make
    /// progress, and silently clamping it would hide the typo).
    pub batch_jobs: usize,
}

impl FleetConfig {
    /// Validates the configuration against `registry` with the typed
    /// [`SpecError`] of the spec/config path: every solver name must be
    /// a registry key (unknown names come with a did-you-mean
    /// suggestion), the lineup must be duplicate-free, an explicit
    /// reference must be part of the lineup, `batch_jobs` and `threads`
    /// must be positive, and the cost bound must be a valid budget.
    pub fn validate(&self, registry: &Registry) -> Result<(), SpecError> {
        crate::spec::validate_lineup(&self.solvers, self.reference.as_deref(), registry)?;
        if self.batch_jobs == 0 {
            return Err(SpecError::ZeroBatchJobs);
        }
        if self.threads == Some(0) {
            return Err(SpecError::ZeroThreads);
        }
        if self.options.cost_bound.is_nan() || self.options.cost_bound < 0.0 {
            return Err(SpecError::InvalidCostBound {
                value: self.options.cost_bound,
            });
        }
        Ok(())
    }

    /// The reference solver this configuration resolves to: the explicit
    /// [`FleetConfig::reference`] when set, else the fast pruned DP over
    /// the full-state one, whichever appears among
    /// [`FleetConfig::solvers`] (regardless of position).
    ///
    /// Shared with `replica-fleetd` so sharded and in-process runs agree
    /// on the gap/speedup baseline by construction.
    pub fn resolved_reference(&self) -> Option<String> {
        self.reference.clone().or_else(|| {
            ["dp_power", "dp_power_full"]
                .into_iter()
                .find(|p| self.solvers.iter().any(|s| s == p))
                .map(str::to_string)
        })
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            solvers: vec![
                "greedy_power".into(),
                "heur_power_greedy".into(),
                "dp_power".into(),
            ],
            options: SolveOptions::default(),
            seed: 0xF1EE7,
            reference: None,
            threads: None,
            batch_jobs: 64,
        }
    }
}

/// The deterministic part of one solve.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutcome {
    /// Eq. 2/4 cost.
    pub cost: f64,
    /// Eq. 3 power.
    pub power: f64,
    /// Server count.
    pub servers: u64,
}

/// How one `(instance, solver)` evaluation ended.
#[derive(Clone, Debug, PartialEq)]
pub enum CellResult {
    /// The solver produced a placement.
    Solved(CellOutcome),
    /// The instance is outside the solver's capabilities.
    Unsupported,
    /// The solver ran and failed (infeasible instance, budget missed).
    Failed(String),
}

impl CellResult {
    /// The outcome, when solved.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        match self {
            CellResult::Solved(outcome) => Some(outcome),
            _ => None,
        }
    }
}

/// One `(instance, solver)` evaluation, as seen by the streaming observer
/// of [`Fleet::run_with_observer`]. Borrowed and transient: the cell is
/// gone after the callback returns (zero retention on the hot path).
pub struct FleetCell<'a> {
    /// Scenario label of the instance.
    pub scenario: &'a str,
    /// Instance index within the scenario.
    pub instance: usize,
    /// Solver name.
    pub solver: &'static str,
    /// How the evaluation ended.
    pub result: CellResult,
    /// Wall-clock seconds of the solve (non-deterministic; excluded from
    /// [`FleetReport::digest`]).
    pub wall_seconds: f64,
}

impl FleetCell<'_> {
    /// Writes the deterministic digest line of this cell (what the fleet
    /// checksum accumulates; timing excluded).
    fn write_digest(&self, out: &mut impl fmt::Write) -> fmt::Result {
        match &self.result {
            CellResult::Solved(o) => writeln!(
                out,
                "{}#{} {}: cost={:.9} power={:.9} servers={}",
                self.scenario, self.instance, self.solver, o.cost, o.power, o.servers
            ),
            CellResult::Unsupported => writeln!(
                out,
                "{}#{} {}: unsupported",
                self.scenario, self.instance, self.solver
            ),
            CellResult::Failed(e) => writeln!(
                out,
                "{}#{} {}: error={}",
                self.scenario, self.instance, self.solver, e
            ),
        }
    }
}

/// Aggregates of one `(scenario, solver)` group.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Scenario label.
    pub scenario: String,
    /// Solver name.
    pub solver: &'static str,
    /// Instances solved.
    pub solved: usize,
    /// Instances where the solver errored (infeasible/budget).
    pub failed: usize,
    /// Instances outside the solver's capabilities.
    pub unsupported: usize,
    /// Cost distribution over solved instances.
    pub cost: Stats,
    /// Power distribution over solved instances.
    pub power: Stats,
    /// Mean server count over solved instances.
    pub mean_servers: f64,
    /// Mean power ratio to the reference solver, over instances both
    /// solved (1.0 = matches the exact optimum when the reference is an
    /// exact DP).
    pub power_gap_vs_ref: Option<f64>,
    /// Full distribution of the per-instance power ratios behind
    /// [`FleetSummary::power_gap_vs_ref`].
    pub gap_vs_ref: Option<Stats>,
    /// Mean wall-clock seconds per solve (non-deterministic).
    pub mean_wall_seconds: f64,
    /// Full distribution of per-solve wall-clock seconds
    /// (non-deterministic; the telemetry layer's per-group histogram).
    pub wall: Stats,
    /// Reference mean wall over this solver's mean wall
    /// (non-deterministic; > 1 means faster than the reference).
    pub speedup_vs_ref: Option<f64>,
    /// Distribution of per-instance wall ratios (reference over this
    /// solver; non-deterministic).
    pub speedup_dist: Option<Stats>,
}

/// The outcome of a fleet run: streaming aggregates only — the cell
/// matrix itself is folded away as it is produced.
pub struct FleetReport {
    /// Per-`(scenario, solver)` aggregates, in first-appearance (job)
    /// order.
    pub summaries: Vec<FleetSummary>,
    /// Number of `(instance, solver)` cells evaluated.
    pub cell_count: usize,
    /// FNV-1a checksum over every cell's deterministic digest line, in
    /// job order — the cell matrix's fingerprint without its memory.
    pub cell_checksum: u64,
}

/// Streaming per-group state, generic over whether the metric
/// accumulators keep their observation tape ([`MetricSink`]):
/// [`MetricAccumulator`] for in-process runs, [`RecordedMetric`] for
/// shard workers that must serialize mergeable state.
struct GroupAcc<M> {
    scenario: String,
    solver: &'static str,
    solved: usize,
    failed: usize,
    unsupported: usize,
    cost: M,
    power: M,
    servers_sum: f64,
    gap: M,
    wall_sum: f64,
    wall: M,
    speedup: M,
}

impl<M: MetricSink> GroupAcc<M> {
    fn new(scenario: String, solver: &'static str) -> Self {
        GroupAcc {
            scenario,
            solver,
            solved: 0,
            failed: 0,
            unsupported: 0,
            cost: M::default(),
            power: M::default(),
            servers_sum: 0.0,
            gap: M::default(),
            wall_sum: 0.0,
            wall: M::default(),
            speedup: M::default(),
        }
    }
}

/// The sequential fold target: group accumulators in first-appearance
/// order plus the fleet-level cell fingerprint. Groups for a scenario
/// occupy `solvers.len()` consecutive slots (config solver order), so
/// the per-cell lookup is one borrowed-key map probe — the fold's hot
/// path allocates nothing.
struct Aggregation<M> {
    groups: Vec<GroupAcc<M>>,
    scenario_base: HashMap<String, usize>,
    has_reference: bool,
    cell_count: usize,
    checksum: FnvHasher,
}

/// Scales the value-typed fields of a distribution snapshot by
/// `factor` (count unchanged) — seconds→milliseconds for telemetry
/// histograms.
fn scale_stats(stats: Stats, factor: f64) -> Stats {
    Stats {
        count: stats.count,
        mean: stats.mean * factor,
        min: stats.min * factor,
        max: stats.max * factor,
        p50: stats.p50 * factor,
        p90: stats.p90 * factor,
        p99: stats.p99 * factor,
    }
}

/// Incremental FNV-1a over anything `write!`-able (the cell checksum
/// never materializes the formatted line).
struct FnvHasher(u64);

impl FnvHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
}

impl fmt::Write for FnvHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for byte in s.bytes() {
            self.0 = (self.0 ^ byte as u64).wrapping_mul(Self::PRIME);
        }
        Ok(())
    }
}

impl<M: MetricSink> Aggregation<M> {
    fn new(has_reference: bool) -> Self {
        Aggregation {
            groups: Vec::new(),
            scenario_base: HashMap::new(),
            has_reference,
            cell_count: 0,
            checksum: FnvHasher(FnvHasher::OFFSET),
        }
    }

    /// First group slot of `scenario`, creating the scenario's group row
    /// on first appearance.
    fn scenario_base(&mut self, scenario: &str, solvers: &[&'static str]) -> usize {
        if let Some(&base) = self.scenario_base.get(scenario) {
            return base;
        }
        let base = self.groups.len();
        for solver in solvers {
            self.groups
                .push(GroupAcc::new(scenario.to_string(), solver));
        }
        self.scenario_base.insert(scenario.to_string(), base);
        base
    }

    /// Folds one job's row of cells in, in solver order.
    fn fold_row(
        &mut self,
        scenario: &str,
        instance: usize,
        row: Vec<(CellResult, f64)>,
        solvers: &[&'static str],
        reference_slot: Option<usize>,
        observe: &mut dyn FnMut(&FleetCell),
    ) {
        assert_eq!(row.len(), solvers.len(), "cell row width != solver count");
        let base = self.scenario_base(scenario, solvers);
        let reference = reference_slot
            .and_then(|s| row[s].0.outcome().map(|outcome| (outcome.power, row[s].1)));
        for (s, (result, wall_seconds)) in row.into_iter().enumerate() {
            let cell = FleetCell {
                scenario,
                instance,
                solver: solvers[s],
                result,
                wall_seconds,
            };
            observe(&cell);
            self.cell_count += 1;
            cell.write_digest(&mut self.checksum)
                .expect("hashing cannot fail");

            let group = &mut self.groups[base + s];
            match &cell.result {
                CellResult::Solved(outcome) => {
                    group.solved += 1;
                    group.cost.push(outcome.cost);
                    group.power.push(outcome.power);
                    group.servers_sum += outcome.servers as f64;
                    group.wall_sum += cell.wall_seconds;
                    group.wall.push(cell.wall_seconds);
                    if let Some((ref_power, ref_wall)) = reference {
                        if ref_power > 0.0 {
                            group.gap.push(outcome.power / ref_power);
                        }
                        if cell.wall_seconds > 0.0 {
                            group.speedup.push(ref_wall / cell.wall_seconds);
                        }
                    }
                }
                CellResult::Unsupported => group.unsupported += 1,
                CellResult::Failed(_) => group.failed += 1,
            }
        }
    }

    /// Final snapshot: summaries in first-appearance order.
    fn finish(self, reference: Option<&str>) -> FleetReport {
        // Reference mean wall per scenario, for the speedup column.
        let ref_wall: HashMap<&str, f64> = self
            .groups
            .iter()
            .filter(|g| Some(g.solver) == reference && g.solved > 0)
            .map(|g| (g.scenario.as_str(), g.wall_sum / g.solved as f64))
            .collect();

        let has_reference = self.has_reference;
        let summaries = self
            .groups
            .iter()
            .map(|g| {
                let mean_wall = if g.solved == 0 {
                    0.0
                } else {
                    g.wall_sum / g.solved as f64
                };
                FleetSummary {
                    scenario: g.scenario.clone(),
                    solver: g.solver,
                    solved: g.solved,
                    failed: g.failed,
                    unsupported: g.unsupported,
                    cost: g.cost.stats(),
                    power: g.power.stats(),
                    mean_servers: if g.solved == 0 {
                        0.0
                    } else {
                        g.servers_sum / g.solved as f64
                    },
                    power_gap_vs_ref: (has_reference && g.gap.count() > 0).then(|| g.gap.mean()),
                    gap_vs_ref: (has_reference && g.gap.count() > 0).then(|| g.gap.stats()),
                    mean_wall_seconds: mean_wall,
                    wall: g.wall.stats(),
                    speedup_vs_ref: ref_wall
                        .get(g.scenario.as_str())
                        .filter(|_| mean_wall > 0.0)
                        .map(|w| w / mean_wall),
                    speedup_dist: (g.speedup.count() > 0).then(|| g.speedup.stats()),
                }
            })
            .collect();
        FleetReport {
            summaries,
            cell_count: self.cell_count,
            cell_checksum: self.checksum.0,
        }
    }
}

impl Aggregation<RecordedMetric> {
    /// Snapshots every group's mergeable state, in first-appearance
    /// order.
    fn group_states(&self) -> Vec<GroupState> {
        self.groups
            .iter()
            .map(|g| GroupState {
                scenario: g.scenario.clone(),
                solver: g.solver.to_string(),
                solved: g.solved,
                failed: g.failed,
                unsupported: g.unsupported,
                servers_sum: g.servers_sum,
                wall_sum: g.wall_sum,
                cost: g.cost.clone(),
                power: g.power.clone(),
                gap: g.gap.clone(),
                wall: g.wall.clone(),
                speedup: g.speedup.clone(),
            })
            .collect()
    }
}

/// The serializable, mergeable aggregation state of one `(scenario,
/// solver)` group — what a `replica-fleetd` shard worker ships besides
/// its raw cell stream.
///
/// Merging contract: left-folding the group states of contiguous shards
/// in shard order ([`GroupState::merge_in_order`]) reproduces the
/// sequential in-process accumulators exactly — counts and integer-valued
/// sums pairwise, distribution metrics by ordered tape replay
/// ([`RecordedMetric::merge_in_order`]). The coordinator uses this as an
/// independent second route to the merged aggregates and cross-checks it
/// against the canonical cell-replay route ([`GroupState::agrees_with`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupState {
    /// Scenario label.
    pub scenario: String,
    /// Solver name (a registry key).
    pub solver: String,
    /// Instances solved.
    pub solved: usize,
    /// Instances where the solver errored.
    pub failed: usize,
    /// Instances outside the solver's capabilities.
    pub unsupported: usize,
    /// Sum of server counts over solved instances. Server counts are
    /// small integers, so this f64 sum is exact and order-independent —
    /// pairwise merge is bit-exact.
    pub servers_sum: f64,
    /// Sum of wall-clock seconds over solved instances. Non-deterministic
    /// measurement; its pairwise merge is exact only in real arithmetic
    /// (see [`GroupState::agrees_with`]).
    pub wall_sum: f64,
    /// Cost distribution (mergeable).
    pub cost: RecordedMetric,
    /// Power distribution (mergeable).
    pub power: RecordedMetric,
    /// Power-ratio-to-reference distribution (mergeable).
    pub gap: RecordedMetric,
    /// Per-solve wall-clock distribution (mergeable; the measurements
    /// are non-deterministic but the merge replays them exactly).
    pub wall: RecordedMetric,
    /// Wall-ratio-to-reference distribution (mergeable).
    pub speedup: RecordedMetric,
}

impl GroupState {
    /// Merges the state of the *immediately following* contiguous shard's
    /// same group into `self`. Errors if the group keys disagree.
    pub fn merge_in_order(&mut self, other: &GroupState) -> Result<(), String> {
        if self.scenario != other.scenario || self.solver != other.solver {
            return Err(format!(
                "group key mismatch: {}/{} merged with {}/{}",
                self.scenario, self.solver, other.scenario, other.solver
            ));
        }
        self.solved += other.solved;
        self.failed += other.failed;
        self.unsupported += other.unsupported;
        self.servers_sum += other.servers_sum;
        self.wall_sum += other.wall_sum;
        self.cost.merge_in_order(&other.cost);
        self.power.merge_in_order(&other.power);
        self.gap.merge_in_order(&other.gap);
        self.wall.merge_in_order(&other.wall);
        self.speedup.merge_in_order(&other.speedup);
        Ok(())
    }

    /// Checks this (merged) state against the corresponding summary of a
    /// sequentially folded report.
    ///
    /// Everything deterministic must match **exactly** (bit-for-bit):
    /// counts, the cost/power/gap distributions, the mean server count,
    /// the speedup *distribution* (its inputs are the recorded wall
    /// values, identical on both routes). The wall-clock *sum* is the one
    /// field whose pairwise merge is exact only in real arithmetic —
    /// floating-point addition is not associative — so the derived mean
    /// wall is compared within 1 ulp-scale relative tolerance instead.
    pub fn agrees_with(&self, summary: &FleetSummary) -> Result<(), String> {
        let context = format!("{}/{}", self.scenario, self.solver);
        let check = |what: &str, ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(format!(
                    "{context}: merged {what} diverged from the sequential fold"
                ))
            }
        };
        check(
            "group key",
            self.scenario == summary.scenario && self.solver == summary.solver,
        )?;
        check(
            "solved/failed/unsupported counts",
            (self.solved, self.failed, self.unsupported)
                == (summary.solved, summary.failed, summary.unsupported),
        )?;
        check("cost distribution", self.cost.stats() == summary.cost)?;
        check("power distribution", self.power.stats() == summary.power)?;
        let mean_servers = if self.solved == 0 {
            0.0
        } else {
            self.servers_sum / self.solved as f64
        };
        check("mean server count", mean_servers == summary.mean_servers)?;
        let gap = (self.gap.count() > 0).then(|| self.gap.stats());
        check("gap distribution", gap == summary.gap_vs_ref)?;
        check(
            "mean gap",
            (self.gap.count() > 0).then(|| self.gap.mean()) == summary.power_gap_vs_ref,
        )?;
        check(
            "speedup distribution",
            (self.speedup.count() > 0).then(|| self.speedup.stats()) == summary.speedup_dist,
        )?;
        // Same story as the speedup distribution: both routes fold the
        // identical recorded wall values in the identical order, so the
        // distribution matches bit for bit even though the values
        // themselves are measurements.
        check("wall distribution", self.wall.stats() == summary.wall)?;
        let mean_wall = if self.solved == 0 {
            0.0
        } else {
            self.wall_sum / self.solved as f64
        };
        check(
            "mean wall (tolerance)",
            (mean_wall - summary.mean_wall_seconds).abs()
                <= 1e-12 * summary.mean_wall_seconds.abs().max(1.0),
        )?;
        Ok(())
    }
}

/// Order-preserving fold target for externally produced cell rows — the
/// coordinator-side merge seam of sharded fleets.
///
/// `replica-fleetd` feeds every shard's recorded cells through
/// [`FleetFold::fold_row`] in shard order; because this drives the exact
/// same sequential fold as [`Fleet::run`], the finished report (aggregates,
/// cell count **and** FNV cell checksum) is byte-identical to the
/// single-process run by construction. Memory stays bounded by the group
/// accumulators — folded rows are dropped immediately.
pub struct FleetFold {
    agg: Aggregation<MetricAccumulator>,
    solvers: Vec<&'static str>,
    reference: Option<String>,
    reference_slot: Option<usize>,
}

impl FleetFold {
    /// A fold over rows of `solvers.len()` cells each, with gap/speedup
    /// columns against `reference` (when it names one of `solvers`).
    pub fn new(solvers: Vec<&'static str>, reference: Option<String>) -> Self {
        let reference_slot = reference
            .as_deref()
            .and_then(|r| solvers.iter().position(|s| *s == r));
        FleetFold {
            agg: Aggregation::new(reference.is_some()),
            solvers,
            reference,
            reference_slot,
        }
    }

    /// Folds one job's row of cells (one per solver, in solver order).
    /// Rows must arrive in job order for the determinism contract to
    /// hold.
    pub fn fold_row(&mut self, scenario: &str, instance: usize, row: Vec<(CellResult, f64)>) {
        self.agg.fold_row(
            scenario,
            instance,
            row,
            &self.solvers,
            self.reference_slot,
            &mut |_| {},
        );
    }

    /// Cells folded so far.
    pub fn cell_count(&self) -> usize {
        self.agg.cell_count
    }

    /// Running FNV-1a checksum over the folded cells' digest lines (the
    /// shard-prefix value: after folding shards `0..=k` this equals the
    /// checksum of a single run over those shards' jobs).
    pub fn checksum(&self) -> u64 {
        self.agg.checksum.0
    }

    /// Final snapshot.
    pub fn finish(self) -> FleetReport {
        let reference = self.reference;
        self.agg.finish(reference.as_deref())
    }
}

/// The outcome of [`Fleet::run_shard_recorded`]: the shard-local report
/// plus the mergeable per-group state a shard worker serializes.
pub struct ShardRun {
    /// Aggregates of the shard's own job range (shard-local counts and
    /// checksum — *not* the full-fleet values).
    pub report: FleetReport,
    /// Mergeable group states, in the shard's first-appearance order.
    pub groups: Vec<GroupState>,
}

/// The runner itself: a registry plus a configuration.
pub struct Fleet<'r> {
    registry: &'r Registry,
    config: FleetConfig,
}

impl<'r> Fleet<'r> {
    /// Builds a runner over `registry`.
    ///
    /// # Panics
    ///
    /// On configuration errors ([`FleetConfig::validate`]): an unknown
    /// or duplicated solver name, a reference outside the lineup,
    /// `batch_jobs == 0` (a zero-job streaming batch cannot make
    /// progress; the typo used to be silently clamped to 1, now it is
    /// rejected up front), `threads == Some(0)`, or an invalid cost
    /// bound. [`Fleet::try_new`] is the non-panicking form.
    pub fn new(registry: &'r Registry, config: FleetConfig) -> Self {
        Self::try_new(registry, config)
            .unwrap_or_else(|e| panic!("fleet configured with an invalid FleetConfig: {e}"))
    }

    /// Builds a runner over `registry`, rejecting configuration errors
    /// with the typed [`SpecError`] instead of panicking — the entry
    /// point the spec path ([`crate::spec::Campaign::fleet_config`])
    /// pairs with.
    pub fn try_new(registry: &'r Registry, config: FleetConfig) -> Result<Self, SpecError> {
        config.validate(registry)?;
        Ok(Fleet { registry, config })
    }

    /// Labels `count` instances of every scenario into an **eager** job
    /// list — [`ScenarioSpace::materialize`] under its historical name.
    /// Prefer [`Fleet::run_space`] over a [`ScenarioSpace`] directly:
    /// the lazy path never holds more than one streaming batch of jobs.
    pub fn jobs_from_scenarios(scenarios: &[Scenario], seed: u64, count: usize) -> Vec<FleetJob> {
        ScenarioSpace::new(scenarios, seed, count).materialize()
    }

    /// Evaluates every job against every configured solver, streaming the
    /// outcomes into aggregates (thin adapter: a slice is a [`JobSpace`]).
    pub fn run(&self, jobs: &[FleetJob]) -> FleetReport {
        self.run_space(jobs)
    }

    /// Like [`Fleet::run`], additionally handing every cell to `observe`
    /// the moment its batch is folded — in deterministic job order,
    /// regardless of thread count. The cell is dropped right after the
    /// callback: this is the zero-retention tap for exporters.
    pub fn run_with_observer(
        &self,
        jobs: &[FleetJob],
        observe: impl FnMut(&FleetCell),
    ) -> FleetReport {
        self.run_space_with_observer(jobs, observe)
    }

    /// Runs one contiguous shard — `jobs[range]` — of an eager job list
    /// (thin adapter over [`Fleet::run_space_shard`]).
    pub fn run_shard(&self, jobs: &[FleetJob], range: Range<usize>) -> FleetReport {
        self.run_space_shard(jobs, range)
    }

    /// [`Fleet::run_shard`] with the streaming cell tap (thin adapter
    /// over [`Fleet::run_space_shard_with_observer`]).
    pub fn run_shard_with_observer(
        &self,
        jobs: &[FleetJob],
        range: Range<usize>,
        observe: impl FnMut(&FleetCell),
    ) -> FleetReport {
        self.run_space_shard_with_observer(jobs, range, observe)
    }

    /// [`Fleet::run_shard_with_observer`] over recording accumulators
    /// (thin adapter over [`Fleet::run_space_shard_recorded`]).
    pub fn run_shard_recorded(
        &self,
        jobs: &[FleetJob],
        range: Range<usize>,
        observe: impl FnMut(&FleetCell),
    ) -> ShardRun {
        self.run_space_shard_recorded(jobs, range, observe)
    }

    /// Evaluates every job of `space` against every configured solver —
    /// the primary, lazy entry point. Jobs are constructed one streaming
    /// batch at a time and dropped with their batch: peak memory is
    /// `O(batch_jobs)`, independent of the campaign size.
    pub fn run_space<S: JobSpace + ?Sized>(&self, space: &S) -> FleetReport {
        self.run_space_with_observer(space, |_| {})
    }

    /// [`Fleet::run_space`] with the streaming cell tap.
    pub fn run_space_with_observer<S: JobSpace + ?Sized>(
        &self,
        space: &S,
        observe: impl FnMut(&FleetCell),
    ) -> FleetReport {
        self.run_space_shard_with_observer(space, 0..space.len(), observe)
    }

    /// [`Fleet::run_space`] with telemetry: spans, per-batch progress,
    /// per-group wall histograms and outcome counters flow through
    /// `obs`. Telemetry is strictly out-of-band — the returned report
    /// (checksum included) is byte-identical to an untraced run; the
    /// trace-invariance proptest pins this.
    pub fn run_space_traced<S: JobSpace + ?Sized>(&self, space: &S, obs: &Obs) -> FleetReport {
        let reference = self.config.resolved_reference();
        self.run_range::<MetricAccumulator, S>(space, 0..space.len(), &mut |_| {}, obs, None)
            .expect("no cancel token given")
            .finish(reference.as_deref())
    }

    /// Runs one contiguous shard — jobs `range` — of the job space.
    ///
    /// Per-job seeds derive from the job's **global** index in `space`,
    /// so a shard evaluates exactly the cells a full [`Fleet::run_space`]
    /// would for those jobs, regardless of how the space is split — and
    /// it constructs only that range's jobs (`O(range)` generation; the
    /// `O(shard)` regression tests pin this through a
    /// [`CountingSpace`](crate::jobspace::CountingSpace)). The returned
    /// report is shard-local (its counts, checksum and aggregates cover
    /// only the range); replaying shard cell streams through a
    /// [`FleetFold`] in shard order reassembles the full-run report
    /// byte-for-byte.
    pub fn run_space_shard<S: JobSpace + ?Sized>(
        &self,
        space: &S,
        range: Range<usize>,
    ) -> FleetReport {
        self.run_space_shard_with_observer(space, range, |_| {})
    }

    /// [`Fleet::run_space_shard`] with the streaming cell tap (the
    /// shard-worker seam: `replica-fleetd` records the observed cells
    /// into its shard report).
    pub fn run_space_shard_with_observer<S: JobSpace + ?Sized>(
        &self,
        space: &S,
        range: Range<usize>,
        mut observe: impl FnMut(&FleetCell),
    ) -> FleetReport {
        let reference = self.config.resolved_reference();
        self.run_range::<MetricAccumulator, S>(space, range, &mut observe, &Obs::noop(), None)
            .expect("no cancel token given")
            .finish(reference.as_deref())
    }

    /// [`Fleet::run_space_shard_with_observer`] over **recording**
    /// accumulators: additionally snapshots every group's mergeable
    /// [`GroupState`] (tapes included), which is what a shard worker
    /// serializes for the coordinator's state-merge cross-check.
    /// In-process runs should prefer the non-recording entry points —
    /// recording costs `O(cells)` memory.
    pub fn run_space_shard_recorded<S: JobSpace + ?Sized>(
        &self,
        space: &S,
        range: Range<usize>,
        observe: impl FnMut(&FleetCell),
    ) -> ShardRun {
        self.run_space_shard_recorded_traced(space, range, observe, &Obs::noop())
    }

    /// [`Fleet::run_space_shard_recorded`] with telemetry — the traced
    /// shard-worker seam (`fleetd work --trace`, heartbeat progress).
    pub fn run_space_shard_recorded_traced<S: JobSpace + ?Sized>(
        &self,
        space: &S,
        range: Range<usize>,
        observe: impl FnMut(&FleetCell),
        obs: &Obs,
    ) -> ShardRun {
        self.run_space_shard_recorded_cancellable(space, range, observe, obs, None)
            .expect("no cancel token given")
    }

    /// [`Fleet::run_space_shard_recorded_traced`] with a cooperative
    /// [`CancelToken`] — the supervised-worker seam. The token is
    /// checked **between streaming batches** (a batch folds atomically
    /// or not at all): a cancelled run returns `None` and discards every
    /// partial aggregate, so a supervisor that kills a shard mid-run can
    /// never end up merging a half-folded report. `None` for `cancel`
    /// (or a token that is never cancelled) makes this identical to the
    /// uncancellable entry point.
    pub fn run_space_shard_recorded_cancellable<S: JobSpace + ?Sized>(
        &self,
        space: &S,
        range: Range<usize>,
        mut observe: impl FnMut(&FleetCell),
        obs: &Obs,
        cancel: Option<&CancelToken>,
    ) -> Option<ShardRun> {
        let reference = self.config.resolved_reference();
        let agg = self.run_range::<RecordedMetric, S>(space, range, &mut observe, obs, cancel)?;
        let groups = agg.group_states();
        Some(ShardRun {
            report: agg.finish(reference.as_deref()),
            groups,
        })
    }

    /// The shared run body: generate and solve `space[range]` batch by
    /// batch, fold sequentially in job order into `M`-backed group
    /// accumulators. Only indices inside `range` are ever handed to
    /// [`JobSpace::job`], and each batch's jobs are dropped before the
    /// next is generated.
    ///
    /// Telemetry (out-of-band by contract — it reads results, never
    /// writes them): a root `campaign` span over the whole range, one
    /// `batch` child span per streaming batch with a progress event
    /// (jobs done, jobs/sec, ETA) after its sequential fold, per-solve
    /// `solve` spans when `obs` is at [`replica_obs::Verbosity::Solve`],
    /// and — at the end — one wall-clock histogram per `(scenario,
    /// solver)` group plus the outcome counters.
    ///
    /// Cancellation: when `cancel` is given, the token is polled before
    /// each batch; a cancelled run stops generating work and returns
    /// `None` — no partial aggregation ever escapes.
    fn run_range<M: MetricSink, S: JobSpace + ?Sized>(
        &self,
        space: &S,
        range: Range<usize>,
        observe: &mut dyn FnMut(&FleetCell),
        obs: &Obs,
        cancel: Option<&CancelToken>,
    ) -> Option<Aggregation<M>> {
        assert!(
            range.start <= range.end && range.end <= space.len(),
            "shard range {range:?} outside the job space (len {})",
            space.len()
        );
        let solvers: Vec<&dyn Solver> = self
            .config
            .solvers
            .iter()
            .map(|name| self.registry.get(name).expect("validated in Fleet::new"))
            .collect();
        let solver_names: Vec<&'static str> = solvers.iter().map(|s| s.name()).collect();
        let reference = self.config.resolved_reference();
        let reference_slot: Option<usize> = reference
            .as_deref()
            .and_then(|r| solver_names.iter().position(|s| *s == r));

        let batch = self.config.batch_jobs;
        let n_solvers = solvers.len();
        let total = range.end - range.start;
        let mut agg: Aggregation<M> = Aggregation::new(reference.is_some());
        let body = || {
            let run_span = obs.span("campaign", format!("jobs {}..{}", range.start, range.end));
            let run_start = Instant::now();
            let disabled = Span::disabled();
            let mut done = 0usize;
            for start in (range.start..range.end).step_by(batch) {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    drop(run_span);
                    obs.flush();
                    return None;
                }
                let end = (start + batch).min(range.end);
                let batch_span = run_span.child("batch", format!("jobs {start}..{end}"));
                // Per-solve spans only at full verbosity; a disabled
                // parent makes them free.
                let solve_parent: &Span = if obs.solve_detail() {
                    &batch_span
                } else {
                    &disabled
                };
                // Lazy generation, batch-bounded: construct only this
                // batch's jobs (in parallel — job(i) is a pure function
                // of the global index, so generation order is free)...
                let batch_jobs: Vec<FleetJob> =
                    (start..end).into_par_iter().map(|i| space.job(i)).collect();
                // ...then parallel solving at (job, solver) grain — a
                // slow solver never serializes behind its row-mates —
                // still bounded by the batch size...
                let tasks: Vec<(usize, usize)> = (0..batch_jobs.len())
                    .flat_map(|j| (0..n_solvers).map(move |s| (j, s)))
                    .collect();
                let cells: Vec<(CellResult, f64)> = tasks
                    .into_par_iter()
                    .map(|(j, s)| {
                        self.run_cell(&batch_jobs[j], start + j, solvers[s], solve_parent)
                    })
                    .collect();
                // ...then regrouped into job-major rows and folded
                // sequentially in job order (determinism). The batch's
                // jobs drop here: peak memory is one batch, not the
                // campaign.
                let mut cells = cells.into_iter();
                for job in &batch_jobs {
                    let row: Vec<(CellResult, f64)> = cells.by_ref().take(n_solvers).collect();
                    agg.fold_row(
                        &job.scenario,
                        job.index,
                        row,
                        &solver_names,
                        reference_slot,
                        observe,
                    );
                }
                drop(batch_span);
                done += end - start;
                obs.progress(done, total, run_start.elapsed().as_secs_f64());
            }
            if obs.enabled() {
                let (mut solved, mut failed, mut unsupported) = (0u64, 0u64, 0u64);
                for g in &agg.groups {
                    solved += g.solved as u64;
                    failed += g.failed as u64;
                    unsupported += g.unsupported as u64;
                    obs.histogram(
                        format!("{}/{}", g.scenario, g.solver),
                        "ms",
                        scale_stats(g.wall.stats(), 1e3),
                    );
                }
                obs.counter_add("cells", agg.cell_count as u64);
                obs.counter_add("cells_solved", solved);
                obs.counter_add("cells_failed", failed);
                obs.counter_add("cells_unsupported", unsupported);
                obs.flush_counters();
            }
            drop(run_span);
            obs.flush();
            Some(agg)
        };
        match self.config.threads {
            None => body(),
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("thread pool")
                .install(body),
        }
    }

    /// Solves one `(job, solver)` cell. `parent` is the enclosing batch
    /// span (disabled below solve-level verbosity): each cell gets a
    /// `solve` child span, and phase-aware solvers hang their DP phase
    /// sub-spans off it ([`Solver::solve_traced`]).
    fn run_cell(
        &self,
        job: &FleetJob,
        job_index: usize,
        solver: &dyn Solver,
        parent: &Span,
    ) -> (CellResult, f64) {
        let mut options = self.config.options;
        // Per-instance seed: reproducible, decorrelated, independent of
        // which solvers run alongside.
        options.seed = seeding::mix(self.config.seed, job_index as u64);
        if !solver.supports(&job.instance) {
            return (CellResult::Unsupported, 0.0);
        }
        let span = if parent.enabled() {
            parent.child(
                "solve",
                format!("{}#{} {}", job.scenario, job.index, solver.name()),
            )
        } else {
            Span::disabled()
        };
        // Worker threads solve thousands of cells: the thread arena keeps
        // each solver's flat layout, DP tables and scratch buffers warm
        // across jobs (bit-identical outcomes either way — see
        // `Solver::solve_traced_in`).
        match crate::solver::with_thread_arena(|arena| {
            solver.solve_traced_in(&job.instance, &options, &span, arena)
        }) {
            Ok(outcome) => (
                CellResult::Solved(CellOutcome {
                    cost: outcome.cost,
                    power: outcome.power,
                    servers: outcome.servers,
                }),
                outcome.wall.as_secs_f64(),
            ),
            Err(e) => (CellResult::Failed(e.to_string()), 0.0),
        }
    }
}

impl FleetReport {
    /// The deterministic portion of the report: the cell-matrix
    /// fingerprint (count + checksum over every cell's outcome line, in
    /// job order) and every aggregate, timing fields excluded.
    /// Byte-identical across runs, thread counts and batch sizes for a
    /// fixed seed.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "cells={} checksum={:016x}",
            self.cell_count, self.cell_checksum
        )
        .expect("writing to String cannot fail");
        for s in &self.summaries {
            writeln!(
                out,
                "{} {}: solved={} failed={} unsupported={} cost[{:.9}/{:.9}/{:.9}] \
                 power[{:.9}/{:.9}/{:.9}] power_p50={:.9} servers={:.4} gap={}",
                s.scenario,
                s.solver,
                s.solved,
                s.failed,
                s.unsupported,
                s.cost.min,
                s.cost.mean,
                s.cost.max,
                s.power.min,
                s.power.mean,
                s.power.max,
                s.power.p50,
                s.mean_servers,
                s.power_gap_vs_ref
                    .map_or("-".to_string(), |g| format!("{g:.9}")),
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Renders the aggregates as an aligned ASCII table (includes the
    /// non-deterministic timing columns).
    pub fn table(&self) -> String {
        let mut rows = vec![vec![
            "scenario".to_string(),
            "solver".into(),
            "solved".into(),
            "fail".into(),
            "power_mean".into(),
            "power_p90".into(),
            "cost_mean".into(),
            "servers".into(),
            "gap_vs_ref".into(),
            "ms/solve".into(),
            "ms_p90".into(),
            "speedup".into(),
        ]];
        for s in &self.summaries {
            let mut row = Self::deterministic_cells(s);
            row.push(format!("{:.3}", s.wall.mean * 1e3));
            row.push(format!("{:.3}", s.wall.p90 * 1e3));
            row.push(s.speedup_vs_ref.map_or("-".into(), |x| format!("{x:.1}x")));
            rows.push(row);
        }
        Self::render(&rows)
    }

    /// Renders the aggregates as an aligned ASCII table **without** the
    /// timing columns: every cell is a pure function of the fleet seed,
    /// so — like [`FleetReport::digest`] — this rendering is
    /// byte-identical across runs, thread counts, batch sizes *and*
    /// process shardings of the same configuration. `replica-fleetd`
    /// diffs it between merged and single-process runs.
    pub fn table_deterministic(&self) -> String {
        let mut rows = vec![vec![
            "scenario".to_string(),
            "solver".into(),
            "solved".into(),
            "fail".into(),
            "power_mean".into(),
            "power_p90".into(),
            "cost_mean".into(),
            "servers".into(),
            "gap_vs_ref".into(),
        ]];
        for s in &self.summaries {
            rows.push(Self::deterministic_cells(s));
        }
        Self::render(&rows)
    }

    /// The deterministic column cells of one summary row (shared by both
    /// table renderings).
    fn deterministic_cells(s: &FleetSummary) -> Vec<String> {
        vec![
            s.scenario.clone(),
            s.solver.to_string(),
            s.solved.to_string(),
            (s.failed + s.unsupported).to_string(),
            format!("{:.2}", s.power.mean),
            format!("{:.2}", s.power.p90),
            format!("{:.3}", s.cost.mean),
            format!("{:.1}", s.mean_servers),
            s.power_gap_vs_ref.map_or("-".into(), |g| format!("{g:.4}")),
        ]
    }

    /// Column-aligned rendering with a rule under the header row.
    fn render(rows: &[Vec<String>]) -> String {
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|i| rows.iter().map(|r| r[i].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (ri, row) in rows.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
            if ri == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Demand, Scenario, Topology};

    fn tiny_jobs() -> Vec<FleetJob> {
        let scenarios = vec![
            Scenario::new(Topology::High, Demand::Uniform, 12),
            Scenario::new(Topology::Star, Demand::Skewed, 12),
        ];
        Fleet::jobs_from_scenarios(&scenarios, 11, 3)
    }

    #[test]
    fn fleet_runs_and_aggregates() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec![
                "greedy".into(),
                "dp_power".into(),
                "heur_power_greedy".into(),
            ],
            ..Default::default()
        };
        let fleet = Fleet::new(&registry, config);
        let jobs = tiny_jobs();
        let report = fleet.run(&jobs);
        assert_eq!(report.cell_count, jobs.len() * 3);
        assert_eq!(report.summaries.len(), 2 * 3, "2 scenarios × 3 solvers");
        for s in &report.summaries {
            assert_eq!(
                s.solved, 3,
                "{}/{} should solve everything",
                s.scenario, s.solver
            );
            assert_eq!(s.cost.count, 3);
            assert!(s.power.min <= s.power.p50 && s.power.p50 <= s.power.max);
            if s.solver != "dp_power" {
                let gap = s.power_gap_vs_ref.expect("reference present");
                assert!(
                    gap >= 1.0 - 1e-9,
                    "{}: exact DP must win, gap {gap}",
                    s.solver
                );
                let dist = s.gap_vs_ref.expect("gap distribution present");
                assert_eq!(dist.count, 3);
                assert!((dist.mean - gap).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown solver")]
    fn unknown_solver_is_rejected_up_front() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec!["not_a_solver".into()],
            ..Default::default()
        };
        let _ = Fleet::new(&registry, config);
    }

    #[test]
    fn digest_is_stable_across_runs_threads_and_batch_sizes() {
        let registry = Registry::with_all();
        let digest_with = |threads: Option<usize>, batch_jobs: usize| {
            let config = FleetConfig {
                solvers: vec![
                    "greedy_power".into(),
                    "dp_power".into(),
                    "heur_annealing".into(),
                ],
                threads,
                batch_jobs,
                ..Default::default()
            };
            Fleet::new(&registry, config).run(&tiny_jobs()).digest()
        };
        let base = digest_with(None, 64);
        assert_eq!(base, digest_with(None, 64), "same config, same digest");
        assert_eq!(
            base,
            digest_with(Some(1), 64),
            "single-threaded digest identical"
        );
        assert_eq!(
            base,
            digest_with(Some(7), 64),
            "odd thread count digest identical"
        );
        assert_eq!(
            base,
            digest_with(None, 1),
            "one-job batches digest identical"
        );
        assert_eq!(
            base,
            digest_with(Some(3), 2),
            "threads × batch interplay digest identical"
        );
        assert!(base.contains("dp_power"));
        assert!(base.starts_with("cells="));
    }

    #[test]
    fn observer_streams_cells_in_job_order() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec!["greedy".into(), "greedy_power".into()],
            batch_jobs: 2,
            ..Default::default()
        };
        let jobs = tiny_jobs();
        let mut seen: Vec<(String, usize, &'static str)> = Vec::new();
        let report = Fleet::new(&registry, config).run_with_observer(&jobs, |cell| {
            seen.push((cell.scenario.to_string(), cell.instance, cell.solver));
        });
        assert_eq!(seen.len(), report.cell_count);
        let expected: Vec<(String, usize, &'static str)> = jobs
            .iter()
            .flat_map(|j| {
                [
                    (j.scenario.clone(), j.index, "greedy"),
                    (j.scenario.clone(), j.index, "greedy_power"),
                ]
            })
            .collect();
        assert_eq!(seen, expected, "cells observed in deterministic job order");
    }

    #[test]
    fn table_renders_header_and_rows() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec!["greedy".into()],
            ..Default::default()
        };
        let report = Fleet::new(&registry, config).run(&tiny_jobs());
        let table = report.table();
        assert!(table.contains("scenario"));
        assert!(table.lines().count() >= 2 + 2, "header + rule + 2 rows");
    }

    #[test]
    #[should_panic(expected = "batch_jobs = 0")]
    fn zero_batch_jobs_is_a_configuration_error() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            batch_jobs: 0,
            ..Default::default()
        };
        let _ = Fleet::new(&registry, config);
    }

    fn shard_config() -> FleetConfig {
        FleetConfig {
            solvers: vec![
                "greedy_power".into(),
                "dp_power".into(),
                "heur_annealing".into(),
            ],
            batch_jobs: 2,
            ..Default::default()
        }
    }

    /// Splits `0..n_jobs` into `shards` contiguous near-equal ranges.
    fn split(n_jobs: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
        let chunk = n_jobs.div_ceil(shards.max(1));
        (0..shards)
            .map(|k| (k * chunk).min(n_jobs)..((k + 1) * chunk).min(n_jobs))
            .collect()
    }

    /// One recorded job row: scenario, instance, per-solver cells.
    type RecordedRow = (String, usize, Vec<(CellResult, f64)>);

    #[test]
    fn shard_runs_fold_back_into_the_sequential_report() {
        let registry = Registry::with_all();
        let fleet = Fleet::new(&registry, shard_config());
        let jobs = tiny_jobs();
        let whole = fleet.run(&jobs);

        for shards in [1, 2, 3, jobs.len() + 3] {
            // Worker side: run each contiguous range, recording cells and
            // mergeable group state.
            let mut fold = FleetFold::new(
                vec!["greedy_power", "dp_power", "heur_annealing"],
                Some("dp_power".into()),
            );
            let mut merged_groups: Option<Vec<GroupState>> = None;
            for range in split(jobs.len(), shards) {
                let mut rows: Vec<RecordedRow> = Vec::new();
                let shard = fleet.run_shard_recorded(&jobs, range, |cell| {
                    if rows.last().map(|(s, i, _)| (s.as_str(), *i))
                        != Some((cell.scenario, cell.instance))
                    {
                        rows.push((cell.scenario.to_string(), cell.instance, Vec::new()));
                    }
                    rows.last_mut()
                        .expect("row pushed above")
                        .2
                        .push((cell.result.clone(), cell.wall_seconds));
                });
                // Coordinator side, canonical route: replay the cells.
                for (scenario, instance, row) in rows {
                    fold.fold_row(&scenario, instance, row);
                }
                // Coordinator side, state route: merge the group states.
                merged_groups = Some(match merged_groups.take() {
                    None => shard.groups,
                    Some(mut acc) => {
                        for group in &shard.groups {
                            match acc
                                .iter_mut()
                                .find(|g| g.scenario == group.scenario && g.solver == group.solver)
                            {
                                Some(existing) => existing.merge_in_order(group).unwrap(),
                                None => acc.push(group.clone()),
                            }
                        }
                        acc
                    }
                });
            }
            let merged = fold.finish();
            assert_eq!(
                merged.digest(),
                whole.digest(),
                "{shards}-way shard replay must be byte-identical"
            );
            assert_eq!(merged.cell_count, whole.cell_count);
            assert_eq!(merged.cell_checksum, whole.cell_checksum);
            assert_eq!(merged.table_deterministic(), whole.table_deterministic());
            // And the independently merged group states agree, field by
            // field, with the canonical replay of the same shard cells
            // (not with `whole`: its wall-clock *measurements* differ
            // run to run, and the wall-based columns reflect that).
            let groups = merged_groups.expect("at least one shard");
            assert_eq!(groups.len(), merged.summaries.len());
            for (state, summary) in groups.iter().zip(&merged.summaries) {
                state.agrees_with(summary).unwrap();
            }
        }
    }

    #[test]
    fn cancellation_between_batches_discards_everything_or_nothing() {
        let registry = Registry::with_all();
        let fleet = Fleet::new(&registry, shard_config());
        let jobs = tiny_jobs();

        // A never-cancelled token changes nothing: byte-identical to the
        // uncancellable entry point.
        let token = CancelToken::new();
        let run = fleet
            .run_space_shard_recorded_cancellable(
                &jobs[..],
                0..jobs.len(),
                |_| {},
                &replica_obs::Obs::noop(),
                Some(&token),
            )
            .expect("uncancelled run completes");
        let baseline = fleet.run_shard_recorded(&jobs, 0..jobs.len(), |_| {});
        assert_eq!(run.report.digest(), baseline.report.digest());

        // Cancelling from the cell observer (batch_jobs = 2, so the
        // token trips mid-run) aborts at the next batch boundary and
        // yields None — observed cells are discarded, never folded into
        // a partial report.
        let mid = CancelToken::new();
        let mid_clone = mid.clone();
        let mut seen = 0usize;
        let cancelled = fleet.run_space_shard_recorded_cancellable(
            &jobs[..],
            0..jobs.len(),
            |_| {
                seen += 1;
                if seen >= 3 {
                    mid_clone.cancel();
                }
            },
            &replica_obs::Obs::noop(),
            Some(&mid),
        );
        assert!(cancelled.is_none(), "mid-run cancellation must yield None");
        assert!(seen >= 3 && seen < jobs.len() * 3, "stopped early: {seen}");
        assert!(mid.is_cancelled());

        // A token cancelled up front runs nothing at all.
        let pre = CancelToken::new();
        pre.cancel();
        let mut observed = 0usize;
        let none = fleet.run_space_shard_recorded_cancellable(
            &jobs[..],
            0..jobs.len(),
            |_| observed += 1,
            &replica_obs::Obs::noop(),
            Some(&pre),
        );
        assert!(none.is_none());
        assert_eq!(observed, 0, "pre-cancelled run must not solve a cell");
    }

    #[test]
    fn deterministic_table_drops_timing_columns() {
        let registry = Registry::with_all();
        let report = Fleet::new(&registry, shard_config()).run(&tiny_jobs());
        let table = report.table_deterministic();
        assert!(table.contains("gap_vs_ref"));
        assert!(!table.contains("ms/solve"));
        assert!(!table.contains("speedup"));
    }

    #[test]
    fn group_state_round_trips_and_detects_divergence() {
        let registry = Registry::with_all();
        let fleet = Fleet::new(&registry, shard_config());
        let jobs = tiny_jobs();
        let shard = fleet.run_shard_recorded(&jobs, 0..jobs.len(), |_| {});
        for (state, summary) in shard.groups.iter().zip(&shard.report.summaries) {
            // Wire round-trip preserves agreement bit for bit.
            let json = serde_json::to_string(state).unwrap();
            let back: GroupState = serde_json::from_str(&json).unwrap();
            back.agrees_with(summary).unwrap();
        }
        // A tampered state is caught.
        let mut bad = shard.groups[1].clone();
        bad.power.push(1.0);
        assert!(bad.agrees_with(&shard.report.summaries[1]).is_err());
        // Merging mismatched group keys is refused.
        let mut a = shard.groups[0].clone();
        let b = shard.groups[1].clone();
        assert!(a.merge_in_order(&b).is_err());
    }
}
