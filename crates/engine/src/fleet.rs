//! The parallel scenario-fleet runner.
//!
//! A [`Fleet`] evaluates a batch of labelled instances against a set of
//! registered solvers — the cartesian product `instances × solvers` — in
//! parallel with rayon, and aggregates the outcomes per `(scenario,
//! solver)` group: cost/power distributions, server counts, wall-clock
//! means, plus optimality gaps and speedups against a reference solver
//! (the exact DP by default).
//!
//! Determinism: per-instance solver seeds derive from the fleet seed via
//! [`seeding::mix`], results are collected in job order regardless of
//! scheduling, and aggregation runs sequentially over that order — so a
//! seeded fleet report (minus wall-clock fields) is **byte-identical**
//! across runs and across thread counts. [`FleetReport::digest`] exposes
//! exactly the deterministic portion; the determinism suite pins it.

use crate::registry::Registry;
use crate::scenarios::Scenario;
use crate::seeding;
use crate::solver::{SolveOptions, Solver};
use rayon::prelude::*;
use replica_model::Instance;
use std::fmt::Write as _;

/// One labelled instance of a fleet.
pub struct FleetJob {
    /// Scenario (grouping) label.
    pub scenario: String,
    /// Index within the scenario (also the seed stream of the instance).
    pub index: usize,
    /// The instance itself.
    pub instance: Instance,
}

/// Configuration of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Solver names to evaluate (must exist in the registry).
    pub solvers: Vec<String>,
    /// Options handed to every solve (the per-instance seed is derived
    /// from [`FleetConfig::seed`], overriding `options.seed`).
    pub options: SolveOptions,
    /// Fleet seed: drives per-instance solver seeds.
    pub seed: u64,
    /// Reference solver for gap/speedup columns (defaults to `dp_power`
    /// when present among [`FleetConfig::solvers`]).
    pub reference: Option<String>,
    /// Worker-thread override (`None` = machine default). Results are
    /// identical for every value; only wall-clock changes.
    pub threads: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            solvers: vec![
                "greedy_power".into(),
                "heur_power_greedy".into(),
                "dp_power".into(),
            ],
            options: SolveOptions::default(),
            seed: 0xF1EE7,
            reference: None,
            threads: None,
        }
    }
}

/// The deterministic part of one solve.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutcome {
    /// Eq. 2/4 cost.
    pub cost: f64,
    /// Eq. 3 power.
    pub power: f64,
    /// Server count.
    pub servers: u64,
}

/// How one `(instance, solver)` evaluation ended.
#[derive(Clone, Debug, PartialEq)]
pub enum CellResult {
    /// The solver produced a placement.
    Solved(CellOutcome),
    /// The instance is outside the solver's capabilities.
    Unsupported,
    /// The solver ran and failed (infeasible instance, budget missed).
    Failed(String),
}

impl CellResult {
    /// The outcome, when solved.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        match self {
            CellResult::Solved(outcome) => Some(outcome),
            _ => None,
        }
    }
}

/// One `(instance, solver)` evaluation.
pub struct FleetCell {
    /// Scenario label of the instance.
    pub scenario: String,
    /// Instance index within the scenario.
    pub instance: usize,
    /// Solver name.
    pub solver: &'static str,
    /// How the evaluation ended.
    pub result: CellResult,
    /// Wall-clock seconds of the solve (non-deterministic; excluded from
    /// [`FleetReport::digest`]).
    pub wall_seconds: f64,
}

/// Simple distribution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    fn of(values: &[f64]) -> Stats {
        if values.is_empty() {
            return Stats::default();
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats { mean, min, max }
    }
}

/// Aggregates of one `(scenario, solver)` group.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Scenario label.
    pub scenario: String,
    /// Solver name.
    pub solver: &'static str,
    /// Instances solved.
    pub solved: usize,
    /// Instances where the solver errored (infeasible/budget).
    pub failed: usize,
    /// Instances outside the solver's capabilities.
    pub unsupported: usize,
    /// Cost distribution over solved instances.
    pub cost: Stats,
    /// Power distribution over solved instances.
    pub power: Stats,
    /// Mean server count over solved instances.
    pub mean_servers: f64,
    /// Mean power ratio to the reference solver, over instances both
    /// solved (1.0 = matches the exact optimum when the reference is an
    /// exact DP).
    pub power_gap_vs_ref: Option<f64>,
    /// Mean wall-clock seconds per solve (non-deterministic).
    pub mean_wall_seconds: f64,
    /// Reference mean wall over this solver's mean wall
    /// (non-deterministic; > 1 means faster than the reference).
    pub speedup_vs_ref: Option<f64>,
}

/// The outcome of a fleet run.
pub struct FleetReport {
    /// Every `(instance, solver)` cell, in deterministic job order.
    pub cells: Vec<FleetCell>,
    /// Per-`(scenario, solver)` aggregates, in first-appearance order.
    pub summaries: Vec<FleetSummary>,
}

/// The runner itself: a registry plus a configuration.
pub struct Fleet<'r> {
    registry: &'r Registry,
    config: FleetConfig,
}

impl<'r> Fleet<'r> {
    /// Builds a runner over `registry`.
    pub fn new(registry: &'r Registry, config: FleetConfig) -> Self {
        for name in &config.solvers {
            assert!(
                registry.get(name).is_some(),
                "fleet configured with unknown solver {name:?}"
            );
        }
        Fleet { registry, config }
    }

    /// Labels `count` instances of every scenario into a job list.
    pub fn jobs_from_scenarios(scenarios: &[Scenario], seed: u64, count: usize) -> Vec<FleetJob> {
        let mut jobs = Vec::with_capacity(scenarios.len() * count);
        for scenario in scenarios {
            for index in 0..count {
                jobs.push(FleetJob {
                    scenario: scenario.name.clone(),
                    index,
                    instance: scenario.instance(seed, index),
                });
            }
        }
        jobs
    }

    /// Evaluates every job against every configured solver, in parallel.
    pub fn run(&self, jobs: &[FleetJob]) -> FleetReport {
        let solvers: Vec<&dyn Solver> = self
            .config
            .solvers
            .iter()
            .map(|name| self.registry.get(name).expect("validated in Fleet::new"))
            .collect();

        let run_all = || -> Vec<FleetCell> {
            let tasks: Vec<(usize, usize)> = (0..jobs.len())
                .flat_map(|j| (0..solvers.len()).map(move |s| (j, s)))
                .collect();
            tasks
                .into_par_iter()
                .map(|(j, s)| self.run_cell(&jobs[j], j, solvers[s]))
                .collect()
        };

        let cells = match self.config.threads {
            None => run_all(),
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("thread pool")
                .install(run_all),
        };

        let summaries = self.summarize(&cells);
        FleetReport { cells, summaries }
    }

    fn run_cell(&self, job: &FleetJob, job_index: usize, solver: &dyn Solver) -> FleetCell {
        let mut options = self.config.options;
        // Per-instance seed: reproducible, decorrelated, independent of
        // which solvers run alongside.
        options.seed = seeding::mix(self.config.seed, job_index as u64);
        if !solver.supports(&job.instance) {
            return FleetCell {
                scenario: job.scenario.clone(),
                instance: job.index,
                solver: solver.name(),
                result: CellResult::Unsupported,
                wall_seconds: 0.0,
            };
        }
        match solver.solve(&job.instance, &options) {
            Ok(outcome) => FleetCell {
                scenario: job.scenario.clone(),
                instance: job.index,
                solver: solver.name(),
                result: CellResult::Solved(CellOutcome {
                    cost: outcome.cost,
                    power: outcome.power,
                    servers: outcome.servers,
                }),
                wall_seconds: outcome.wall.as_secs_f64(),
            },
            Err(e) => FleetCell {
                scenario: job.scenario.clone(),
                instance: job.index,
                solver: solver.name(),
                result: CellResult::Failed(e.to_string()),
                wall_seconds: 0.0,
            },
        }
    }

    fn summarize(&self, cells: &[FleetCell]) -> Vec<FleetSummary> {
        use std::collections::HashMap;

        let reference = self.config.reference.clone().or_else(|| {
            self.config
                .solvers
                .iter()
                .find(|s| s.as_str() == "dp_power" || s.as_str() == "dp_power_pruned")
                .cloned()
        });

        // One pass: group cells per (scenario, solver) preserving
        // first-appearance order, and index reference outcomes per
        // (scenario, instance) — everything O(cells).
        let mut keys: Vec<(String, &'static str)> = Vec::new();
        let mut groups: HashMap<(String, &'static str), Vec<&FleetCell>> = HashMap::new();
        let mut ref_power: HashMap<(&str, usize), f64> = HashMap::new();
        let mut ref_walls: HashMap<&str, Vec<f64>> = HashMap::new();
        for cell in cells {
            let key = (cell.scenario.clone(), cell.solver);
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    keys.push(key);
                    Vec::new()
                })
                .push(cell);
            if reference.as_deref() == Some(cell.solver) {
                if let CellResult::Solved(outcome) = &cell.result {
                    ref_power.insert((cell.scenario.as_str(), cell.instance), outcome.power);
                    ref_walls
                        .entry(cell.scenario.as_str())
                        .or_default()
                        .push(cell.wall_seconds);
                }
            }
        }

        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };

        keys.into_iter()
            .map(|key| {
                let group = &groups[&key];
                let (scenario, solver) = key;
                let solved: Vec<&CellOutcome> =
                    group.iter().filter_map(|c| c.result.outcome()).collect();
                let unsupported = group
                    .iter()
                    .filter(|c| matches!(c.result, CellResult::Unsupported))
                    .count();
                let failed = group.len() - solved.len() - unsupported;
                let costs: Vec<f64> = solved.iter().map(|o| o.cost).collect();
                let powers: Vec<f64> = solved.iter().map(|o| o.power).collect();
                let walls: Vec<f64> = group
                    .iter()
                    .filter(|c| c.result.outcome().is_some())
                    .map(|c| c.wall_seconds)
                    .collect();

                // Power ratio to the reference over commonly solved
                // instances.
                let ratios: Vec<f64> = group
                    .iter()
                    .filter_map(|c| {
                        let mine = c.result.outcome()?.power;
                        let theirs = *ref_power.get(&(c.scenario.as_str(), c.instance))?;
                        (theirs > 0.0).then_some(mine / theirs)
                    })
                    .collect();
                let power_gap_vs_ref =
                    (reference.is_some() && !ratios.is_empty()).then(|| mean(&ratios));

                // Speedup: reference mean wall / this solver's mean wall.
                let mean_wall = mean(&walls);
                let speedup_vs_ref = ref_walls
                    .get(scenario.as_str())
                    .filter(|w| !w.is_empty() && mean_wall > 0.0)
                    .map(|w| mean(w) / mean_wall);

                FleetSummary {
                    scenario,
                    solver,
                    solved: solved.len(),
                    failed,
                    unsupported,
                    cost: Stats::of(&costs),
                    power: Stats::of(&powers),
                    mean_servers: mean(
                        &solved.iter().map(|o| o.servers as f64).collect::<Vec<_>>(),
                    ),
                    power_gap_vs_ref,
                    mean_wall_seconds: mean_wall,
                    speedup_vs_ref,
                }
            })
            .collect()
    }
}

impl FleetReport {
    /// The deterministic portion of the report: every cell outcome and
    /// every aggregate, timing fields excluded. Byte-identical across
    /// runs and thread counts for a fixed seed.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            match &c.result {
                CellResult::Solved(o) => writeln!(
                    out,
                    "{}#{} {}: cost={:.9} power={:.9} servers={}",
                    c.scenario, c.instance, c.solver, o.cost, o.power, o.servers
                ),
                CellResult::Unsupported => writeln!(
                    out,
                    "{}#{} {}: unsupported",
                    c.scenario, c.instance, c.solver
                ),
                CellResult::Failed(e) => writeln!(
                    out,
                    "{}#{} {}: error={}",
                    c.scenario, c.instance, c.solver, e
                ),
            }
            .expect("writing to String cannot fail");
        }
        for s in &self.summaries {
            writeln!(
                out,
                "{} {}: solved={} failed={} unsupported={} cost[{:.9}/{:.9}/{:.9}] \
                 power[{:.9}/{:.9}/{:.9}] servers={:.4} gap={}",
                s.scenario,
                s.solver,
                s.solved,
                s.failed,
                s.unsupported,
                s.cost.min,
                s.cost.mean,
                s.cost.max,
                s.power.min,
                s.power.mean,
                s.power.max,
                s.mean_servers,
                s.power_gap_vs_ref
                    .map_or("-".to_string(), |g| format!("{g:.9}")),
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Renders the aggregates as an aligned ASCII table (includes the
    /// non-deterministic timing columns).
    pub fn table(&self) -> String {
        let header = [
            "scenario",
            "solver",
            "solved",
            "fail",
            "power_mean",
            "cost_mean",
            "servers",
            "gap_vs_ref",
            "ms/solve",
            "speedup",
        ];
        let mut rows: Vec<[String; 10]> = vec![header.map(String::from)];
        for s in &self.summaries {
            rows.push([
                s.scenario.clone(),
                s.solver.to_string(),
                s.solved.to_string(),
                (s.failed + s.unsupported).to_string(),
                format!("{:.2}", s.power.mean),
                format!("{:.3}", s.cost.mean),
                format!("{:.1}", s.mean_servers),
                s.power_gap_vs_ref.map_or("-".into(), |g| format!("{g:.4}")),
                format!("{:.3}", s.mean_wall_seconds * 1e3),
                s.speedup_vs_ref.map_or("-".into(), |x| format!("{x:.1}x")),
            ]);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|i| rows.iter().map(|r| r[i].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (ri, row) in rows.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
            if ri == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Demand, Scenario, Topology};

    fn tiny_jobs() -> Vec<FleetJob> {
        let scenarios = vec![
            Scenario::new(Topology::High, Demand::Uniform, 12),
            Scenario::new(Topology::Star, Demand::Skewed, 12),
        ];
        Fleet::jobs_from_scenarios(&scenarios, 11, 3)
    }

    #[test]
    fn fleet_runs_and_aggregates() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec![
                "greedy".into(),
                "dp_power".into(),
                "heur_power_greedy".into(),
            ],
            ..Default::default()
        };
        let fleet = Fleet::new(&registry, config);
        let jobs = tiny_jobs();
        let report = fleet.run(&jobs);
        assert_eq!(report.cells.len(), jobs.len() * 3);
        assert_eq!(report.summaries.len(), 2 * 3, "2 scenarios × 3 solvers");
        for s in &report.summaries {
            assert_eq!(
                s.solved, 3,
                "{}/{} should solve everything",
                s.scenario, s.solver
            );
            if s.solver != "dp_power" {
                let gap = s.power_gap_vs_ref.expect("reference present");
                assert!(
                    gap >= 1.0 - 1e-9,
                    "{}: exact DP must win, gap {gap}",
                    s.solver
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown solver")]
    fn unknown_solver_is_rejected_up_front() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec!["not_a_solver".into()],
            ..Default::default()
        };
        let _ = Fleet::new(&registry, config);
    }

    #[test]
    fn digest_is_stable_across_runs_and_thread_counts() {
        let registry = Registry::with_all();
        let digest_with = |threads: Option<usize>| {
            let config = FleetConfig {
                solvers: vec![
                    "greedy_power".into(),
                    "dp_power".into(),
                    "heur_annealing".into(),
                ],
                threads,
                ..Default::default()
            };
            Fleet::new(&registry, config).run(&tiny_jobs()).digest()
        };
        let base = digest_with(None);
        assert_eq!(base, digest_with(None), "same config, same digest");
        assert_eq!(
            base,
            digest_with(Some(1)),
            "single-threaded digest identical"
        );
        assert_eq!(
            base,
            digest_with(Some(7)),
            "odd thread count digest identical"
        );
        assert!(base.contains("dp_power"));
    }

    #[test]
    fn table_renders_header_and_rows() {
        let registry = Registry::with_all();
        let config = FleetConfig {
            solvers: vec!["greedy".into()],
            ..Default::default()
        };
        let report = Fleet::new(&registry, config).run(&tiny_jobs());
        let table = report.table();
        assert!(table.contains("scenario"));
        assert!(table.lines().count() >= 2 + 2, "header + rule + 2 rows");
    }
}
