//! Indexed lazy job spaces: `index → FleetJob` without materializing
//! the campaign.
//!
//! A fleet's job list is fully determined by its scenarios, its seed and
//! the per-scenario instance count — every job is a **pure function of
//! its global index**. The [`JobSpace`] trait makes that function the
//! primary currency between [`scenarios`](crate::scenarios), the
//! [`Fleet`](crate::fleet::Fleet) runner and `replica-fleetd`, replacing
//! the eager `Vec<FleetJob>` construction that made shard-worker startup
//! `O(campaign)` while solving was `O(shard)`.
//!
//! The contract has two halves, and the equivalence suite
//! (`crates/engine/tests/jobspace_equivalence.rs`) pins both:
//!
//! 1. **Index identity** — [`JobSpace::job`]`(i)` is identical,
//!    field-for-field, to the `i`-th entry of the eagerly materialized
//!    job list ([`ScenarioSpace::materialize`], the body behind
//!    `Fleet::jobs_from_scenarios`). Instance generation seeds derive
//!    from `(scenario name, fleet seed, index-within-scenario)` and the
//!    per-job solver seed from the **global** index
//!    ([`seeding::mix`](crate::seeding::mix)`(fleet_seed, i)`) — never
//!    from enumeration order — so it does not matter who generates a job,
//!    when, or in which order.
//! 2. **Range locality** — the fleet's shard entry points call `job(i)`
//!    only for `i` inside the requested range, one streaming batch at a
//!    time. A shard worker therefore constructs exactly its own jobs
//!    (`O(shard)` time and memory), and any contiguous split of the
//!    space merges back to the byte-identical report
//!    ([`FleetFold`](crate::fleet::FleetFold) replays the same
//!    sequential fold).
//!
//! [`CountingSpace`] wraps any space with a generation counter; the
//! `O(shard)` regression tests assert through it that workers never
//! touch jobs outside their manifest.

use crate::fleet::FleetJob;
use crate::scenarios::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic, indexable job universe: `len()` jobs, each a pure
/// function of its global index.
///
/// Implementations must be cheap to query out of order and from many
/// threads at once (`Sync`); the fleet generates each streaming batch's
/// jobs in parallel. `job(i)` must return the same value for the same
/// `i` on every call — the determinism contract of fleets, shards and
/// merges rests on it.
pub trait JobSpace: Sync {
    /// Number of jobs in the space.
    fn len(&self) -> usize;

    /// Builds job `index` (global job order).
    ///
    /// # Panics
    ///
    /// Implementations panic when `index >= len()`.
    fn job(&self, index: usize) -> FleetJob;

    /// Whether the space has no jobs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An eagerly materialized job list is itself a (trivial) job space:
/// `job(i)` clones entry `i`. This is the thin adapter behind the
/// `&[FleetJob]` fleet entry points — pre-built lists keep working, at
/// the cost of one instance clone per solve batch.
impl JobSpace for [FleetJob] {
    fn len(&self) -> usize {
        self.len()
    }

    fn job(&self, index: usize) -> FleetJob {
        self[index].clone()
    }
}

/// The lazy scenario-fleet job space: `scenarios × per_scenario` jobs in
/// scenario-major order (all instances of scenario 0, then scenario 1,
/// …), generated on demand.
///
/// Global index `i` maps to scenario `i / per_scenario`, within-scenario
/// index `i % per_scenario`; the instance is
/// [`Scenario::instance`]`(seed, within)` — exactly what the eager
/// `Fleet::jobs_from_scenarios` builds, without building it.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpace<'a> {
    scenarios: &'a [Scenario],
    seed: u64,
    per_scenario: usize,
}

impl<'a> ScenarioSpace<'a> {
    /// The job space of `per_scenario` instances of every scenario,
    /// seeded by `seed`.
    pub fn new(scenarios: &'a [Scenario], seed: u64, per_scenario: usize) -> Self {
        ScenarioSpace {
            scenarios,
            seed,
            per_scenario,
        }
    }

    /// The fleet seed driving instance generation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Instances per scenario.
    pub fn per_scenario(&self) -> usize {
        self.per_scenario
    }

    /// The scenario list, in job order.
    pub fn scenarios(&self) -> &'a [Scenario] {
        self.scenarios
    }

    /// Materializes the whole space as an eager job list (the historical
    /// representation; `O(campaign)` time and memory). Prefer handing
    /// the space itself to the fleet.
    pub fn materialize(&self) -> Vec<FleetJob> {
        (0..self.len()).map(|i| self.job(i)).collect()
    }
}

impl JobSpace for ScenarioSpace<'_> {
    fn len(&self) -> usize {
        self.scenarios.len() * self.per_scenario
    }

    fn job(&self, index: usize) -> FleetJob {
        assert!(
            index < self.len(),
            "job index {index} outside the space (len {})",
            self.len()
        );
        let scenario = &self.scenarios[index / self.per_scenario];
        let within = index % self.per_scenario;
        FleetJob {
            scenario: scenario.name.clone(),
            index: within,
            instance: scenario.instance(self.seed, within),
        }
    }
}

/// A [`JobSpace`] wrapper counting how many jobs are actually
/// constructed — the instrument behind the `O(shard)` regression tests:
/// a worker solving shard `k` must generate exactly `len(shard k)` jobs,
/// never the whole campaign.
pub struct CountingSpace<S> {
    inner: S,
    generated: AtomicUsize,
}

impl<S: JobSpace> CountingSpace<S> {
    /// Wraps `inner` with a fresh counter.
    pub fn new(inner: S) -> Self {
        CountingSpace {
            inner,
            generated: AtomicUsize::new(0),
        }
    }

    /// Number of `job()` calls observed so far.
    pub fn generated(&self) -> usize {
        self.generated.load(Ordering::Relaxed)
    }

    /// Unwraps the inner space.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: JobSpace> JobSpace for CountingSpace<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn job(&self, index: usize) -> FleetJob {
        self.generated.fetch_add(1, Ordering::Relaxed);
        self.inner.job(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Demand, Topology};

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario::new(Topology::High, Demand::Uniform, 8),
            Scenario::new(Topology::Star, Demand::Skewed, 8),
        ]
    }

    #[test]
    fn scenario_space_indexes_scenario_major() {
        let scenarios = scenarios();
        let space = ScenarioSpace::new(&scenarios, 3, 2);
        assert_eq!(space.len(), 4);
        assert!(!space.is_empty());
        assert_eq!(space.job(0).scenario, scenarios[0].name);
        assert_eq!(space.job(0).index, 0);
        assert_eq!(space.job(1).index, 1);
        assert_eq!(space.job(2).scenario, scenarios[1].name);
        assert_eq!(space.job(2).index, 0);
    }

    #[test]
    fn lazy_jobs_match_the_materialized_list() {
        let scenarios = scenarios();
        let space = ScenarioSpace::new(&scenarios, 11, 3);
        let eager = space.materialize();
        assert_eq!(eager.len(), space.len());
        for (i, job) in eager.iter().enumerate() {
            let lazy = space.job(i);
            assert_eq!(lazy.scenario, job.scenario);
            assert_eq!(lazy.index, job.index);
            assert_eq!(
                serde_json::to_string(lazy.instance.tree()).unwrap(),
                serde_json::to_string(job.instance.tree()).unwrap(),
                "job {i}: lazy and eager instances must be identical"
            );
        }
    }

    #[test]
    fn slice_adapter_replays_entries() {
        let scenarios = scenarios();
        let jobs = ScenarioSpace::new(&scenarios, 5, 2).materialize();
        let slice: &[FleetJob] = &jobs;
        assert_eq!(JobSpace::len(slice), jobs.len());
        let job = slice.job(3);
        assert_eq!(job.scenario, jobs[3].scenario);
        assert_eq!(job.index, jobs[3].index);
    }

    #[test]
    fn counting_space_counts_constructions() {
        let scenarios = scenarios();
        let space = CountingSpace::new(ScenarioSpace::new(&scenarios, 7, 4));
        assert_eq!(space.len(), 8);
        assert_eq!(space.generated(), 0);
        let _ = space.job(2);
        let _ = space.job(2);
        let _ = space.job(7);
        assert_eq!(space.generated(), 3);
        assert_eq!(space.into_inner().len(), 8);
    }

    #[test]
    #[should_panic(expected = "outside the space")]
    fn out_of_range_index_panics() {
        let scenarios = scenarios();
        let space = ScenarioSpace::new(&scenarios, 1, 1);
        let _ = space.job(2);
    }

    #[test]
    fn empty_space_has_no_jobs() {
        let scenarios = scenarios();
        let space = ScenarioSpace::new(&scenarios, 1, 0);
        assert_eq!(space.len(), 0);
        assert!(space.is_empty());
    }
}
