//! The declarative campaign API: one serializable, **validated**
//! description of any run.
//!
//! The paper's contribution is an evaluation *matrix* — placements ×
//! update strategies × tree/demand families — and before this module
//! every layer described such a matrix its own way: `fleetd` had a
//! `Campaign`, the engine had [`FleetConfig`], and every experiment
//! binary re-wired scenarios, solvers and seeds by hand with stringly
//! errors. [`CampaignSpec`] is the single description all of them load:
//!
//! * **Serializable** — a spec is plain JSON ([`CampaignSpec::load`] /
//!   [`CampaignSpec::save`]), with every knob optional except the
//!   scenario selection: named scenario sets (`standard` / `churn` /
//!   `extended` at a node count) or inline [`Scenario`] lists, the
//!   solver lineup, the reference solver, the fleet seed,
//!   `batch_jobs`/`threads`, an optional cost bound and budget-sweep
//!   grid, and the preferred [`OutputFormat`]. Committed examples live
//!   under `examples/campaigns/` at the repository root.
//! * **Validated at load time** — [`CampaignSpec::validate`] checks the
//!   whole description against a [`Registry`] and the scenario families
//!   *before any job runs*, returning a typed [`SpecError`] whose
//!   messages are actionable (unknown solver names come with a
//!   "did you mean `dp_power`?" suggestion). A valid spec resolves into
//!   a [`Campaign`]: the self-contained, inline-scenario form that shard
//!   plans embed and ship over the wire.
//! * **The one seam** — `fleetd plan/work/run` (via `--spec`), the
//!   `experiments fleet` command, `examples/` and `crates/bench` all
//!   build their runs through this module; the legacy CLI flags build a
//!   spec internally and round-trip it through the serializer, so the
//!   flag path and the file path are the same wire format by
//!   construction. This is deliberately the serialization boundary a
//!   multi-host dispatcher ships over the wire.
//!
//! ```
//! use replica_engine::prelude::*;
//!
//! let registry = Registry::with_all();
//! let campaign = CampaignSpec::builder()
//!     .scenario_set(ScenarioSet::Standard, 12)
//!     .instances_per_scenario(1)
//!     .solvers(["dp_power", "greedy_power"])
//!     .seed(7)
//!     .build()
//!     .validate(&registry)
//!     .unwrap();
//! let fleet = Fleet::try_new(&registry, campaign.fleet_config()).unwrap();
//! let report = fleet.run_space(&campaign.space());
//! assert_eq!(report.cell_count, campaign.job_count() * 2);
//!
//! // A bad spec fails at load time, with a suggestion:
//! let typo = CampaignSpec::builder()
//!     .scenario_set(ScenarioSet::Standard, 12)
//!     .solvers(["dp_pwoer"])
//!     .build()
//!     .validate(&registry)
//!     .unwrap_err();
//! assert!(typo.to_string().contains("did you mean `dp_power`?"));
//! ```

use crate::fleet::{FleetConfig, FleetJob};
use crate::jobspace::ScenarioSpace;
use crate::output::OutputFormat;
use crate::registry::Registry;
use crate::scenarios::Scenario;
use crate::solver::SolveOptions;
use replica_model::ModeSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Instances generated per scenario when a spec leaves
/// [`CampaignSpec::instances_per_scenario`] unset.
pub const DEFAULT_INSTANCES_PER_SCENARIO: usize = 2;

/// Fleet seed used when a spec leaves [`CampaignSpec::seed`] unset.
pub const DEFAULT_SEED: u64 = 991987;

/// Streaming batch size used when a spec leaves
/// [`CampaignSpec::batch_jobs`] unset.
pub const DEFAULT_BATCH_JOBS: usize = 64;

/// The default solver lineup for spec- and CLI-built campaigns (shared
/// by `fleetd` and the experiment binaries — the single copy).
pub fn default_solvers() -> Vec<String> {
    vec![
        "dp_power".into(),
        "greedy_power".into(),
        "heur_power_greedy".into(),
    ]
}

/// The campaign-description flags of the shared CLI grammar
/// ([`CampaignSpec::from_cli`]), without the leading `--`. CLIs use this
/// list to whitelist flags and to detect `--spec`/flag mixing — the
/// single copy shared by `fleetd` and `experiments fleet`.
pub const CAMPAIGN_FLAG_NAMES: &[&str] = &[
    "spec",
    "scenarios",
    "nodes",
    "count",
    "solvers",
    "reference",
    "seed",
    "batch-jobs",
    "threads",
    "cost-bound",
    "budgets",
];

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a campaign spec was rejected — the typed error of the whole
/// spec/config path ([`CampaignSpec`], [`Campaign`], [`FleetConfig`],
/// the `fleetd` CLI). Every variant's [`fmt::Display`] message says what
/// to change, not just what broke.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// Neither a named set nor an inline scenario list was given.
    MissingScenarios,
    /// Both a named set and an inline scenario list were given.
    AmbiguousScenarios,
    /// The named scenario set does not exist.
    UnknownScenarioSet {
        /// The name the spec used.
        got: String,
        /// The closest valid set name, when one is plausibly intended.
        suggestion: Option<String>,
    },
    /// The inline scenario list is empty.
    EmptyScenarioList,
    /// An inline scenario is structurally invalid (too small, bad mode
    /// capacities, non-finite costs).
    InvalidScenario {
        /// The scenario's name.
        name: String,
        /// What is wrong with it.
        message: String,
    },
    /// `instances_per_scenario` is zero.
    ZeroInstances,
    /// The solver lineup is empty.
    NoSolvers,
    /// A solver name is not a registry key.
    UnknownSolver {
        /// The name the spec used.
        name: String,
        /// The closest registered name, when one is plausibly intended.
        suggestion: Option<String>,
    },
    /// The same solver appears twice in the lineup (groups are keyed by
    /// `(scenario, solver)`, so a duplicate would merge ambiguously).
    DuplicateSolver {
        /// The repeated name.
        name: String,
    },
    /// The reference solver is not part of the lineup.
    ReferenceNotInLineup {
        /// The reference the spec named.
        reference: String,
    },
    /// `batch_jobs` is zero.
    ZeroBatchJobs,
    /// `threads` is zero.
    ZeroThreads,
    /// The cost bound is NaN or negative.
    InvalidCostBound {
        /// The offending value.
        value: f64,
    },
    /// A budget grid was given but is empty.
    EmptyBudgetGrid,
    /// A budget grid entry is non-finite or negative.
    InvalidBudget {
        /// The offending value.
        value: f64,
    },
    /// `--spec FILE` was combined with individual campaign flags.
    SpecFlagConflict {
        /// The conflicting campaign flag (without the `--`).
        flag: String,
    },
    /// The output format label is not recognized.
    UnknownFormat {
        /// The label the spec used.
        got: String,
        /// The closest valid label, when one is plausibly intended.
        suggestion: Option<String>,
    },
    /// A spec file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error rendering.
        message: String,
    },
    /// A spec document could not be parsed.
    Parse {
        /// Where the document came from (a path, or `<inline>`).
        context: String,
        /// The parser's error rendering.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suggest = |s: &Option<String>| match s {
            Some(name) => format!(" (did you mean `{name}`?)"),
            None => String::new(),
        };
        match self {
            SpecError::MissingScenarios => write!(
                f,
                "spec selects no scenarios: set either `scenario_set` \
                 (a named set at a node count) or `scenarios` (an inline list)"
            ),
            SpecError::AmbiguousScenarios => write!(
                f,
                "spec sets both `scenario_set` and `scenarios`; \
                 pick one of the two"
            ),
            SpecError::UnknownScenarioSet { got, suggestion } => write!(
                f,
                "unknown scenario set {got:?}{} — valid sets: {}",
                suggest(suggestion),
                ScenarioSet::ALL.map(|s| s.label()).join(", "),
            ),
            SpecError::EmptyScenarioList => {
                write!(f, "the inline `scenarios` list is empty")
            }
            SpecError::InvalidScenario { name, message } => {
                write!(f, "invalid scenario {name:?}: {message}")
            }
            SpecError::ZeroInstances => write!(
                f,
                "instances_per_scenario = 0; a campaign needs at least one \
                 instance per scenario"
            ),
            SpecError::NoSolvers => {
                write!(
                    f,
                    "the solver lineup is empty; list at least one registry solver"
                )
            }
            SpecError::UnknownSolver { name, suggestion } => {
                write!(f, "unknown solver {name:?}{}", suggest(suggestion))
            }
            SpecError::DuplicateSolver { name } => write!(
                f,
                "solver {name:?} appears more than once in the lineup; \
                 each solver may run at most once per campaign"
            ),
            SpecError::ReferenceNotInLineup { reference } => write!(
                f,
                "reference solver {reference:?} is not among the campaign \
                 solvers; add it to the lineup or drop the reference"
            ),
            SpecError::ZeroBatchJobs => write!(
                f,
                "campaign has batch_jobs = 0; the streaming batch size \
                 must be at least 1"
            ),
            SpecError::ZeroThreads => write!(
                f,
                "threads = 0; omit the field for the machine default or \
                 give a positive count"
            ),
            SpecError::InvalidCostBound { value } => write!(
                f,
                "cost_bound = {value} is not a valid budget; use a finite \
                 non-negative number, or omit the field for unconstrained"
            ),
            SpecError::EmptyBudgetGrid => write!(
                f,
                "budget_grid is empty; list at least one budget, or omit \
                 the field"
            ),
            SpecError::InvalidBudget { value } => write!(
                f,
                "budget_grid entry {value} is not a valid budget; every \
                 entry must be finite and non-negative"
            ),
            SpecError::SpecFlagConflict { flag } => write!(
                f,
                "--spec and --{flag} cannot be combined; put the campaign \
                 description in the spec file"
            ),
            SpecError::UnknownFormat { got, suggestion } => write!(
                f,
                "unknown format {got:?}{} — valid formats: {}",
                suggest(suggestion),
                OutputFormat::ALL.map(|s| s.label()).join(", "),
            ),
            SpecError::Io { path, message } => write!(f, "{path}: {message}"),
            SpecError::Parse { context, message } => {
                write!(f, "{context}: cannot parse campaign spec: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Levenshtein distance (iterative two-row DP) for the did-you-mean
/// suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            current.push(substitute.min(prev[j + 1] + 1).min(current[j] + 1));
        }
        prev = current;
    }
    prev[b.len()]
}

/// The closest candidate to `got`, when it is close enough to be a
/// plausible typo (edit distance at most 2, or a third of the longer
/// name for long names).
pub(crate) fn did_you_mean<'a>(
    got: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    let (best, distance) = candidates
        .into_iter()
        .map(|c| (c, levenshtein(got, c)))
        .min_by_key(|&(_, d)| d)?;
    let budget = 2.max(got.len().max(best.len()) / 3);
    (distance <= budget).then_some(best)
}

// ---------------------------------------------------------------------------
// Scenario selection
// ---------------------------------------------------------------------------

/// A named scenario set — the `"standard"` / `"churn"` / `"extended"`
/// parsing previously copy-pasted across the CLIs, now the single copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum ScenarioSet {
    /// The paper-aligned 5 × 4 topology × demand cross product
    /// ([`crate::scenarios::standard_families`], 20 scenarios).
    Standard,
    /// The sim-backed 5 × 3 churn cross product
    /// ([`crate::scenarios::churn_families`], 15 scenarios).
    Churn,
    /// Both ([`crate::scenarios::extended_families`], 35 scenarios).
    Extended,
}

impl ScenarioSet {
    /// Every named set.
    pub const ALL: [ScenarioSet; 3] = [
        ScenarioSet::Standard,
        ScenarioSet::Churn,
        ScenarioSet::Extended,
    ];

    /// The CLI/spec label of this set.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioSet::Standard => "standard",
            ScenarioSet::Churn => "churn",
            ScenarioSet::Extended => "extended",
        }
    }

    /// Parses a CLI/spec set label, with a nearest-name suggestion on a
    /// miss.
    pub fn parse(name: &str) -> Result<ScenarioSet, SpecError> {
        ScenarioSet::ALL
            .into_iter()
            .find(|s| s.label() == name)
            .ok_or_else(|| SpecError::UnknownScenarioSet {
                got: name.to_string(),
                suggestion: did_you_mean(name, ScenarioSet::ALL.iter().map(|s| s.label()))
                    .map(str::to_string),
            })
    }

    /// The set's scenario families at the given internal-node count.
    pub fn families(self, nodes: usize) -> Vec<Scenario> {
        match self {
            ScenarioSet::Standard => crate::scenarios::standard_families(nodes),
            ScenarioSet::Churn => crate::scenarios::churn_families(nodes),
            ScenarioSet::Extended => crate::scenarios::extended_families(nodes),
        }
    }
}

impl fmt::Display for ScenarioSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<ScenarioSet> for String {
    fn from(set: ScenarioSet) -> String {
        set.label().to_string()
    }
}

impl TryFrom<String> for ScenarioSet {
    type Error = SpecError;

    fn try_from(name: String) -> Result<ScenarioSet, SpecError> {
        ScenarioSet::parse(&name)
    }
}

/// A named scenario set at a node count — the `scenario_set` field of a
/// spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioSetRef {
    /// Which built-in set.
    pub set: ScenarioSet,
    /// Internal nodes per tree.
    pub nodes: usize,
}

// ---------------------------------------------------------------------------
// CampaignSpec
// ---------------------------------------------------------------------------

/// The serializable, declarative description of a campaign — everything
/// optional except the scenario selection, defaults documented per
/// field. Validation ([`CampaignSpec::validate`]) resolves it into a
/// runnable [`Campaign`] or fails with a [`SpecError`] before any job
/// runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Named scenario set (mutually exclusive with
    /// [`CampaignSpec::scenarios`]; exactly one must be set).
    pub scenario_set: Option<ScenarioSetRef>,
    /// Inline scenario list (mutually exclusive with
    /// [`CampaignSpec::scenario_set`]).
    pub scenarios: Option<Vec<Scenario>>,
    /// Instances generated per scenario
    /// (default [`DEFAULT_INSTANCES_PER_SCENARIO`]).
    pub instances_per_scenario: Option<usize>,
    /// Solver lineup, registry keys in cell-row order
    /// (default [`default_solvers`]).
    pub solvers: Option<Vec<String>>,
    /// Reference solver for gap/speedup columns (default: the engine's
    /// preference — `dp_power`, then `dp_power_full`, when present).
    pub reference: Option<String>,
    /// Fleet seed (default [`DEFAULT_SEED`]).
    pub seed: Option<u64>,
    /// Streaming batch size (default [`DEFAULT_BATCH_JOBS`]).
    pub batch_jobs: Option<usize>,
    /// Worker-thread override (default: the machine default).
    pub threads: Option<usize>,
    /// Cost budget handed to every solve (default: unconstrained).
    pub cost_bound: Option<f64>,
    /// Budget grid for frontier sweeps over the campaign's scenarios
    /// (default: none; consumed by `experiments fleet`).
    pub budget_grid: Option<Vec<f64>>,
    /// Preferred rendering of the campaign's report (default `table`).
    pub output: Option<OutputFormat>,
}

impl CampaignSpec {
    /// A fluent builder over an empty spec.
    pub fn builder() -> CampaignSpecBuilder {
        CampaignSpecBuilder {
            spec: CampaignSpec::default(),
        }
    }

    /// Serializes the spec as compact JSON (the wire format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serialization cannot fail")
    }

    /// Parses a spec from JSON.
    pub fn from_json(text: &str) -> Result<CampaignSpec, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Parse {
            context: "<inline>".into(),
            message: e.to_string(),
        })
    }

    /// Loads a spec from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<CampaignSpec, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        serde_json::from_str(&text).map_err(|e| SpecError::Parse {
            context: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Writes the spec as JSON to `path`, creating parent directories.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SpecError> {
        let path = path.as_ref();
        let io = |e: std::io::Error| SpecError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io)?;
            }
        }
        std::fs::write(path, self.to_json()).map_err(io)
    }

    /// The shared CLI grammar: loads `--spec FILE` when given, else
    /// builds a spec from the legacy campaign flags
    /// ([`CAMPAIGN_FLAG_NAMES`]) — `--scenarios SET` (default
    /// `standard`), `--nodes N` (default 16), `--count`, `--solvers
    /// a,b,c`, `--reference`, `--seed`, `--batch-jobs`, `--threads`,
    /// `--cost-bound`, `--budgets a,b,c`. Unset flags stay unset and
    /// resolve to the spec defaults at validation, so the flag path and
    /// the file path describe campaigns identically. Mixing `--spec`
    /// with any campaign flag is a [`SpecError::SpecFlagConflict`].
    ///
    /// `get` looks a flag's value up by name (without the `--`) in the
    /// caller's parsed arguments; `fleetd` and `experiments fleet` both
    /// drive this single copy.
    pub fn from_cli<'a>(get: &dyn Fn(&str) -> Option<&'a str>) -> Result<CampaignSpec, SpecError> {
        if let Some(path) = get("spec") {
            if let Some(conflict) = CAMPAIGN_FLAG_NAMES
                .iter()
                .filter(|f| **f != "spec")
                .find(|f| get(f).is_some())
            {
                return Err(SpecError::SpecFlagConflict {
                    flag: conflict.to_string(),
                });
            }
            return CampaignSpec::load(path);
        }
        fn number<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, SpecError> {
            text.parse().map_err(|_| SpecError::Parse {
                context: format!("--{flag}"),
                message: format!("cannot parse {text:?} as a number"),
            })
        }
        let set = ScenarioSet::parse(get("scenarios").unwrap_or("standard"))?;
        let nodes = match get("nodes") {
            Some(text) => number("nodes", text)?,
            None => 16,
        };
        let mut builder = CampaignSpec::builder().scenario_set(set, nodes);
        if let Some(text) = get("count") {
            builder = builder.instances_per_scenario(number("count", text)?);
        }
        if let Some(solvers) = get("solvers") {
            builder = builder.solvers(solvers.split(','));
        }
        if let Some(reference) = get("reference") {
            builder = builder.reference(reference);
        }
        if let Some(text) = get("seed") {
            builder = builder.seed(number("seed", text)?);
        }
        if let Some(text) = get("batch-jobs") {
            builder = builder.batch_jobs(number("batch-jobs", text)?);
        }
        if let Some(text) = get("threads") {
            builder = builder.threads(number("threads", text)?);
        }
        if let Some(text) = get("cost-bound") {
            builder = builder.cost_bound(number("cost-bound", text)?);
        }
        if let Some(text) = get("budgets") {
            let budgets = text
                .split(',')
                .map(|b| number("budgets", b))
                .collect::<Result<Vec<f64>, _>>()?;
            builder = builder.budget_grid(budgets);
        }
        Ok(builder.build())
    }

    /// Validates the spec against `registry` and the scenario families,
    /// resolving defaults into a runnable [`Campaign`]. This is the load
    /// gate: a spec that passes cannot fail later for configuration
    /// reasons.
    pub fn validate(&self, registry: &Registry) -> Result<Campaign, SpecError> {
        let scenarios = match (&self.scenario_set, &self.scenarios) {
            (Some(_), Some(_)) => return Err(SpecError::AmbiguousScenarios),
            (None, None) => return Err(SpecError::MissingScenarios),
            (Some(named), None) => named.set.families(named.nodes),
            (None, Some(inline)) => inline.clone(),
        };
        let campaign = Campaign {
            scenarios,
            instances_per_scenario: self
                .instances_per_scenario
                .unwrap_or(DEFAULT_INSTANCES_PER_SCENARIO),
            solvers: self.solvers.clone().unwrap_or_else(default_solvers),
            reference: self.reference.clone(),
            seed: self.seed.unwrap_or(DEFAULT_SEED),
            batch_jobs: self.batch_jobs.unwrap_or(DEFAULT_BATCH_JOBS),
            threads: self.threads,
            cost_bound: self.cost_bound,
            budget_grid: self.budget_grid.clone(),
            output: self.output.unwrap_or_default(),
        };
        campaign.validate(registry)?;
        Ok(campaign)
    }
}

/// Fluent constructor for [`CampaignSpec`] — every setter mirrors one
/// spec field; unset fields keep their documented defaults.
#[derive(Clone, Debug, Default)]
pub struct CampaignSpecBuilder {
    spec: CampaignSpec,
}

impl CampaignSpecBuilder {
    /// Selects a named scenario set at a node count.
    pub fn scenario_set(mut self, set: ScenarioSet, nodes: usize) -> Self {
        self.spec.scenario_set = Some(ScenarioSetRef { set, nodes });
        self
    }

    /// Selects an explicit scenario list.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.spec.scenarios = Some(scenarios.into_iter().collect());
        self
    }

    /// Instances generated per scenario.
    pub fn instances_per_scenario(mut self, count: usize) -> Self {
        self.spec.instances_per_scenario = Some(count);
        self
    }

    /// The solver lineup (replaces any previously set lineup).
    pub fn solvers<S: Into<String>>(mut self, solvers: impl IntoIterator<Item = S>) -> Self {
        self.spec.solvers = Some(solvers.into_iter().map(Into::into).collect());
        self
    }

    /// Appends one solver to the lineup.
    pub fn solver(mut self, name: impl Into<String>) -> Self {
        self.spec
            .solvers
            .get_or_insert_with(Vec::new)
            .push(name.into());
        self
    }

    /// The reference solver for gap/speedup columns.
    pub fn reference(mut self, name: impl Into<String>) -> Self {
        self.spec.reference = Some(name.into());
        self
    }

    /// The fleet seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = Some(seed);
        self
    }

    /// The streaming batch size.
    pub fn batch_jobs(mut self, batch_jobs: usize) -> Self {
        self.spec.batch_jobs = Some(batch_jobs);
        self
    }

    /// The worker-thread override.
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.threads = Some(threads);
        self
    }

    /// The cost budget handed to every solve.
    pub fn cost_bound(mut self, bound: f64) -> Self {
        self.spec.cost_bound = Some(bound);
        self
    }

    /// The budget grid for frontier sweeps.
    pub fn budget_grid(mut self, budgets: impl IntoIterator<Item = f64>) -> Self {
        self.spec.budget_grid = Some(budgets.into_iter().collect());
        self
    }

    /// The preferred report rendering.
    pub fn output(mut self, format: OutputFormat) -> Self {
        self.spec.output = Some(format);
        self
    }

    /// The finished (still unvalidated) spec.
    pub fn build(self) -> CampaignSpec {
        self.spec
    }

    /// Builds and validates in one step.
    pub fn validate(self, registry: &Registry) -> Result<Campaign, SpecError> {
        self.spec.validate(registry)
    }
}

// ---------------------------------------------------------------------------
// Campaign (the validated, resolved form)
// ---------------------------------------------------------------------------

/// A self-contained, reproducible campaign — a [`CampaignSpec`] after
/// validation: scenarios resolved inline (plans stay self-contained even
/// if the built-in families change), defaults filled in.
///
/// Workers and coordinators never exchange instances — only this
/// description plus shard ranges — because instance generation is
/// deterministic in `(scenario, seed, index)`: [`Campaign::space`] is
/// the lazy, indexed [`ScenarioSpace`] over the description, and a
/// worker queries it only for its own shard's indices.
///
/// A `Campaign` deserialized from the wire is *unchecked*; re-run
/// [`Campaign::validate`] before executing it (the `fleetd` worker and
/// merge do).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// The instance families evaluated (job order: scenarios in this
    /// order, instances `0..instances_per_scenario` within each).
    pub scenarios: Vec<Scenario>,
    /// Instances generated per scenario.
    pub instances_per_scenario: usize,
    /// Solver names (registry keys), in cell-row order.
    pub solvers: Vec<String>,
    /// Reference solver for gap/speedup columns (`None` = the engine's
    /// default preference: `dp_power`, then `dp_power_full`).
    pub reference: Option<String>,
    /// Fleet seed: drives instance generation and per-instance solver
    /// seeds.
    pub seed: u64,
    /// Streaming batch size of each worker's in-process fleet run.
    pub batch_jobs: usize,
    /// Worker-thread override (`None` = machine default; results are
    /// identical for every value).
    pub threads: Option<usize>,
    /// Cost budget handed to every solve (`None` = unconstrained).
    pub cost_bound: Option<f64>,
    /// Budget grid for frontier sweeps over the campaign's scenarios.
    pub budget_grid: Option<Vec<f64>>,
    /// Preferred rendering of the campaign's report.
    pub output: OutputFormat,
}

impl Campaign {
    /// Default solver lineup for CLI-built campaigns (the spec module's
    /// [`default_solvers`], under its historical name).
    pub fn default_solvers() -> Vec<String> {
        default_solvers()
    }

    /// Builds a validated campaign over a named scenario set
    /// (`"standard"`, `"churn"` or `"extended"`) with the default solver
    /// lineup — the historical constructor, now routed through the spec
    /// path and validated against the full registry.
    pub fn from_set(
        set: &str,
        nodes: usize,
        count: usize,
        seed: u64,
    ) -> Result<Campaign, SpecError> {
        CampaignSpec::builder()
            .scenario_set(ScenarioSet::parse(set)?, nodes)
            .instances_per_scenario(count)
            .seed(seed)
            .validate(&Registry::with_all())
    }

    /// The campaign as an (inline-scenario) spec — the exact wire form:
    /// validating this spec reproduces the campaign field for field.
    pub fn spec(&self) -> CampaignSpec {
        CampaignSpec {
            scenario_set: None,
            scenarios: Some(self.scenarios.clone()),
            instances_per_scenario: Some(self.instances_per_scenario),
            solvers: Some(self.solvers.clone()),
            reference: self.reference.clone(),
            seed: Some(self.seed),
            batch_jobs: Some(self.batch_jobs),
            threads: self.threads,
            cost_bound: self.cost_bound,
            budget_grid: self.budget_grid.clone(),
            output: Some(self.output),
        }
    }

    /// Total number of jobs (instances) in the campaign's job space.
    pub fn job_count(&self) -> usize {
        self.scenarios.len() * self.instances_per_scenario
    }

    /// The campaign's indexed lazy job space: `index → FleetJob` as a
    /// pure function of the global job index. This is what workers run
    /// their shard ranges against — generating only their own jobs.
    pub fn space(&self) -> ScenarioSpace<'_> {
        ScenarioSpace::new(&self.scenarios, self.seed, self.instances_per_scenario)
    }

    /// Materializes the full deterministic job list, in job order —
    /// `O(campaign)` time and memory. Prefer [`Campaign::space`].
    pub fn jobs(&self) -> Vec<FleetJob> {
        self.space().materialize()
    }

    /// The fleet configuration every worker runs with.
    pub fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            solvers: self.solvers.clone(),
            options: SolveOptions {
                cost_bound: self.cost_bound.unwrap_or(f64::INFINITY),
                ..SolveOptions::default()
            },
            seed: self.seed,
            reference: self.reference.clone(),
            threads: self.threads,
            batch_jobs: self.batch_jobs,
        }
    }

    /// Re-validates the (possibly wire-deserialized) campaign against
    /// `registry` — the same checks [`CampaignSpec::validate`] performs
    /// on the resolved form.
    pub fn validate(&self, registry: &Registry) -> Result<(), SpecError> {
        if self.scenarios.is_empty() {
            return Err(SpecError::EmptyScenarioList);
        }
        for scenario in &self.scenarios {
            validate_scenario(scenario)?;
        }
        if self.instances_per_scenario == 0 {
            return Err(SpecError::ZeroInstances);
        }
        validate_lineup(&self.solvers, self.reference.as_deref(), registry)?;
        if self.batch_jobs == 0 {
            return Err(SpecError::ZeroBatchJobs);
        }
        if self.threads == Some(0) {
            return Err(SpecError::ZeroThreads);
        }
        if let Some(bound) = self.cost_bound {
            // Finite only: the JSON wire format renders non-finite
            // floats as null, so an infinite bound could not round-trip
            // — and `None` already means unconstrained.
            if !bound.is_finite() || bound < 0.0 {
                return Err(SpecError::InvalidCostBound { value: bound });
            }
        }
        if let Some(grid) = &self.budget_grid {
            if grid.is_empty() {
                return Err(SpecError::EmptyBudgetGrid);
            }
            for &budget in grid {
                if !budget.is_finite() || budget < 0.0 {
                    return Err(SpecError::InvalidBudget { value: budget });
                }
            }
        }
        Ok(())
    }

    /// FNV-1a fingerprint of the campaign's canonical JSON encoding.
    /// Plans stamp it and workers echo it, so a merge can refuse shard
    /// reports produced from a different campaign.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("campaign serialization cannot fail");
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in json.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Checks a solver lineup and optional reference against the registry —
/// shared by [`Campaign::validate`] and [`FleetConfig::validate`].
pub(crate) fn validate_lineup(
    solvers: &[String],
    reference: Option<&str>,
    registry: &Registry,
) -> Result<(), SpecError> {
    if solvers.is_empty() {
        return Err(SpecError::NoSolvers);
    }
    for (i, name) in solvers.iter().enumerate() {
        if registry.get(name).is_none() {
            return Err(SpecError::UnknownSolver {
                name: name.clone(),
                suggestion: did_you_mean(name, registry.names()).map(str::to_string),
            });
        }
        if solvers[..i].contains(name) {
            return Err(SpecError::DuplicateSolver { name: name.clone() });
        }
    }
    if let Some(reference) = reference {
        if !solvers.iter().any(|s| s == reference) {
            return Err(SpecError::ReferenceNotInLineup {
                reference: reference.to_string(),
            });
        }
    }
    Ok(())
}

/// Structural checks on one inline scenario: size and model parameters
/// that would otherwise only fail (by panic) once an instance is built.
fn validate_scenario(scenario: &Scenario) -> Result<(), SpecError> {
    let invalid = |message: String| SpecError::InvalidScenario {
        name: scenario.name.clone(),
        message,
    };
    if scenario.nodes < 2 {
        return Err(invalid(format!(
            "scenarios need at least two internal nodes, got {}",
            scenario.nodes
        )));
    }
    ModeSet::new(scenario.modes.clone()).map_err(|e| invalid(e.to_string()))?;
    for (label, value) in [
        ("create", scenario.create),
        ("delete", scenario.delete),
        ("changed", scenario.changed),
    ] {
        if !value.is_finite() || value < 0.0 {
            return Err(invalid(format!(
                "{label} cost {value} must be finite and non-negative"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Demand, Topology};

    #[test]
    fn named_sets_resolve() {
        assert_eq!(
            Campaign::from_set("standard", 12, 2, 1)
                .unwrap()
                .scenarios
                .len(),
            20
        );
        assert_eq!(
            Campaign::from_set("churn", 12, 2, 1)
                .unwrap()
                .scenarios
                .len(),
            15
        );
        let extended = Campaign::from_set("extended", 12, 2, 1).unwrap();
        assert_eq!(extended.scenarios.len(), 35);
        assert_eq!(extended.job_count(), 70);
        assert!(Campaign::from_set("nope", 12, 2, 1).is_err());
    }

    #[test]
    fn unknown_set_suggests_the_nearest_name() {
        match Campaign::from_set("standrad", 12, 1, 1) {
            Err(SpecError::UnknownScenarioSet { got, suggestion }) => {
                assert_eq!(got, "standrad");
                assert_eq!(suggestion.as_deref(), Some("standard"));
            }
            other => panic!("expected UnknownScenarioSet, got {other:?}"),
        }
        let message = Campaign::from_set("standrad", 12, 1, 1)
            .unwrap_err()
            .to_string();
        assert!(message.contains("did you mean `standard`?"), "{message}");
    }

    #[test]
    fn unknown_solver_suggests_the_nearest_registry_key() {
        let registry = Registry::with_all();
        let err = CampaignSpec::builder()
            .scenario_set(ScenarioSet::Standard, 12)
            .solvers(["dp_pwoer"])
            .validate(&registry)
            .unwrap_err();
        match &err {
            SpecError::UnknownSolver { name, suggestion } => {
                assert_eq!(name, "dp_pwoer");
                assert_eq!(suggestion.as_deref(), Some("dp_power"));
            }
            other => panic!("expected UnknownSolver, got {other:?}"),
        }
        assert!(err.to_string().contains("did you mean `dp_power`?"));

        // A name nothing like any key gets no suggestion.
        let err = CampaignSpec::builder()
            .scenario_set(ScenarioSet::Standard, 12)
            .solvers(["quantum_annealer_9000"])
            .validate(&registry)
            .unwrap_err();
        match err {
            SpecError::UnknownSolver { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("expected UnknownSolver, got {other:?}"),
        }
    }

    #[test]
    fn validation_catches_config_errors() {
        let registry = Registry::with_all();
        let good = Campaign::from_set("standard", 12, 1, 1).unwrap();
        good.validate(&registry).unwrap();

        let mut bad = good.clone();
        bad.solvers.push("not_a_solver".into());
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::UnknownSolver { .. })
        ));

        let mut bad = good.clone();
        bad.solvers.push("dp_power".into());
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::DuplicateSolver { .. })
        ));

        let mut bad = good.clone();
        bad.batch_jobs = 0;
        assert_eq!(bad.validate(&registry), Err(SpecError::ZeroBatchJobs));

        let mut bad = good.clone();
        bad.threads = Some(0);
        assert_eq!(bad.validate(&registry), Err(SpecError::ZeroThreads));

        let mut bad = good.clone();
        bad.reference = Some("exhaustive".into());
        assert!(
            matches!(
                bad.validate(&registry),
                Err(SpecError::ReferenceNotInLineup { .. })
            ),
            "reference must be in solvers"
        );

        let mut bad = good.clone();
        bad.cost_bound = Some(-1.0);
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::InvalidCostBound { .. })
        ));

        // Infinity cannot round-trip through JSON (renders as null), so
        // it is rejected too — `None` is the unconstrained spelling.
        let mut bad = good.clone();
        bad.cost_bound = Some(f64::INFINITY);
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::InvalidCostBound { .. })
        ));

        let mut bad = good.clone();
        bad.budget_grid = Some(vec![]);
        assert_eq!(bad.validate(&registry), Err(SpecError::EmptyBudgetGrid));

        let mut bad = good.clone();
        bad.budget_grid = Some(vec![5.0, f64::NAN]);
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::InvalidBudget { .. })
        ));

        let mut bad = good.clone();
        bad.scenarios[0].modes = vec![10, 5];
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::InvalidScenario { .. })
        ));

        let mut bad = good.clone();
        bad.scenarios[0].nodes = 1;
        assert!(matches!(
            bad.validate(&registry),
            Err(SpecError::InvalidScenario { .. })
        ));

        let mut bad = good;
        bad.instances_per_scenario = 0;
        assert_eq!(bad.validate(&registry), Err(SpecError::ZeroInstances));
    }

    #[test]
    fn spec_scenario_selection_is_exactly_one() {
        let registry = Registry::with_all();
        assert_eq!(
            CampaignSpec::default().validate(&registry),
            Err(SpecError::MissingScenarios)
        );
        let both = CampaignSpec {
            scenario_set: Some(ScenarioSetRef {
                set: ScenarioSet::Standard,
                nodes: 12,
            }),
            scenarios: Some(vec![Scenario::new(Topology::Fat, Demand::Uniform, 12)]),
            ..CampaignSpec::default()
        };
        assert_eq!(both.validate(&registry), Err(SpecError::AmbiguousScenarios));
        let empty_inline = CampaignSpec {
            scenarios: Some(vec![]),
            ..CampaignSpec::default()
        };
        assert_eq!(
            empty_inline.validate(&registry),
            Err(SpecError::EmptyScenarioList)
        );
    }

    #[test]
    fn spec_defaults_resolve_and_round_trip() {
        let registry = Registry::with_all();
        let spec = CampaignSpec::builder()
            .scenario_set(ScenarioSet::Churn, 10)
            .build();
        let campaign = spec.validate(&registry).unwrap();
        assert_eq!(
            campaign.instances_per_scenario,
            DEFAULT_INSTANCES_PER_SCENARIO
        );
        assert_eq!(campaign.solvers, default_solvers());
        assert_eq!(campaign.seed, DEFAULT_SEED);
        assert_eq!(campaign.batch_jobs, DEFAULT_BATCH_JOBS);
        assert_eq!(campaign.output, OutputFormat::Table);
        assert_eq!(campaign.threads, None);

        // The minimal spec round-trips through JSON byte-identically.
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json);
        assert_eq!(
            back.validate(&registry).unwrap().fingerprint(),
            campaign.fingerprint()
        );

        // And the campaign's own spec() reproduces it field for field.
        let again = campaign.spec().validate(&registry).unwrap();
        assert_eq!(again.fingerprint(), campaign.fingerprint());
    }

    #[test]
    fn campaign_round_trips_through_json() {
        let campaign = Campaign::from_set("churn", 10, 3, 7).unwrap();
        let json = serde_json::to_string(&campaign).unwrap();
        let back: Campaign = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fingerprint(), campaign.fingerprint());
        assert_eq!(back.job_count(), campaign.job_count());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = Campaign::from_set("standard", 12, 2, 1).unwrap();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 2;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn spec_files_save_and_load() {
        let dir = std::env::temp_dir().join(format!("spec-test-{}", std::process::id()));
        let path = dir.join("campaign.json");
        let spec = CampaignSpec::builder()
            .scenario_set(ScenarioSet::Standard, 12)
            .instances_per_scenario(1)
            .solvers(["dp_power", "greedy_power"])
            .seed(3)
            .output(OutputFormat::JsonDeterministic)
            .build();
        spec.save(&path).unwrap();
        let back = CampaignSpec::load(&path).unwrap();
        assert_eq!(back.to_json(), spec.to_json());
        let _ = std::fs::remove_dir_all(&dir);

        assert!(matches!(
            CampaignSpec::load(dir.join("missing.json")),
            Err(SpecError::Io { .. })
        ));
    }

    #[test]
    fn parse_errors_carry_their_context() {
        let dir = std::env::temp_dir().join(format!("spec-parse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{not json").unwrap();
        match CampaignSpec::load(&path) {
            Err(SpecError::Parse { context, .. }) => {
                assert!(context.contains("broken.json"), "{context}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            CampaignSpec::from_json("[1, 2]"),
            Err(SpecError::Parse { .. })
        ));
    }

    #[test]
    fn from_cli_builds_loads_and_rejects_mixing() {
        let registry = Registry::with_all();
        let flags = |pairs: &'static [(&'static str, &'static str)]| {
            move |name: &str| pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
        };

        // Flags build a spec whose unset fields resolve to the defaults.
        let get = flags(&[
            ("scenarios", "churn"),
            ("nodes", "10"),
            ("count", "3"),
            ("solvers", "dp_power,greedy_power"),
            ("seed", "7"),
            ("budgets", "2,5"),
        ]);
        let campaign = CampaignSpec::from_cli(&get)
            .unwrap()
            .validate(&registry)
            .unwrap();
        assert_eq!(campaign.scenarios.len(), 15);
        assert_eq!(campaign.instances_per_scenario, 3);
        assert_eq!(campaign.solvers, vec!["dp_power", "greedy_power"]);
        assert_eq!(campaign.seed, 7);
        assert_eq!(campaign.budget_grid, Some(vec![2.0, 5.0]));
        assert_eq!(campaign.batch_jobs, DEFAULT_BATCH_JOBS, "unset → default");

        // No flags at all: the standard set at 16 nodes, all defaults.
        let bare = CampaignSpec::from_cli(&flags(&[]))
            .unwrap()
            .validate(&registry)
            .unwrap();
        assert_eq!(bare.scenarios.len(), 20);
        assert_eq!(bare.seed, DEFAULT_SEED);

        // Bad numbers fail with the flag as context.
        match CampaignSpec::from_cli(&flags(&[("nodes", "many")])) {
            Err(SpecError::Parse { context, .. }) => assert_eq!(context, "--nodes"),
            other => panic!("expected Parse, got {other:?}"),
        }

        // --spec plus any campaign flag is a conflict.
        match CampaignSpec::from_cli(&flags(&[("spec", "c.json"), ("seed", "7")])) {
            Err(SpecError::SpecFlagConflict { flag }) => assert_eq!(flag, "seed"),
            other => panic!("expected SpecFlagConflict, got {other:?}"),
        }
    }

    #[test]
    fn did_you_mean_thresholds() {
        let names = ["dp_power", "greedy_power", "heur_annealing"];
        assert_eq!(did_you_mean("dp_pwoer", names), Some("dp_power"));
        assert_eq!(did_you_mean("greedy_powr", names), Some("greedy_power"));
        assert_eq!(did_you_mean("zzzzzz", names), None);
        assert_eq!(did_you_mean("anything", []), None);
    }
}
