//! # `replica-engine` — unified solver registry + parallel fleet runner
//!
//! The algorithms of `replica-core` are free functions with per-algorithm
//! signatures; this crate turns them into one subsystem with three
//! layers:
//!
//! 1. **[`solver`]** — the uniform [`Solver`] trait: every algorithm
//!    becomes `solve(&Instance, &SolveOptions) -> SolveOutcome`, with
//!    per-solve wall-clock timing, capability flags (mode support,
//!    pre-existing exploitation, cost-budget handling, exactness) and
//!    metrics re-derived through the model crate's independent Eq. 2/3/4
//!    evaluation so outcomes are always comparable.
//! 2. **[`registry`]** — a name-addressable [`Registry`] covering all ten
//!    algorithms (both optimal DPs, the pruned DP, both greedy baselines,
//!    the three §6 heuristics and the exhaustive oracle).
//! 3. **[`fleet`]** — the rayon-powered [`Fleet`] runner: a batch of
//!    labelled instances × solvers evaluated in parallel with
//!    deterministic per-instance seeding ([`seeding`]), reusable scratch
//!    buffers on the greedy hot path, and per-`(scenario, solver)`
//!    aggregates — cost/power distributions, optimality gaps and
//!    speedups against the exact DP.
//!
//! **[`scenarios`]** supplies the fleets: named, reproducible instance
//! families crossing five topology shapes (fat, high, binary,
//! caterpillar, star) with four demand patterns (uniform, skewed,
//! flash-crowd, drifting) — the paper's §5 setups plus the stress shapes
//! they motivate.
//!
//! ## Quickstart
//!
//! ```
//! use replica_engine::prelude::*;
//!
//! // One instance, three algorithms, uniform interface.
//! let scenario = Scenario::new(Topology::High, Demand::Uniform, 20);
//! let instance = scenario.instance(42, 0);
//! let registry = Registry::with_all();
//! let options = SolveOptions::default();
//! let exact = registry.solve("dp_power", &instance, &options).unwrap();
//! let greedy = registry.solve("greedy_power", &instance, &options).unwrap();
//! assert!(exact.power <= greedy.power + 1e-9);
//!
//! // A seeded fleet: scenarios × solvers in parallel, aggregated.
//! let fleet = Fleet::new(
//!     &registry,
//!     FleetConfig {
//!         solvers: vec!["dp_power".into(), "greedy_power".into()],
//!         ..Default::default()
//!     },
//! );
//! let jobs = Fleet::jobs_from_scenarios(&[scenario], 42, 4);
//! let report = fleet.run(&jobs);
//! assert_eq!(report.summaries.len(), 2);
//! println!("{}", report.table());
//! ```

pub mod fleet;
pub mod registry;
pub mod scenarios;
pub mod seeding;
pub mod solver;

pub use fleet::{Fleet, FleetCell, FleetConfig, FleetJob, FleetReport, FleetSummary, Stats};
pub use registry::Registry;
pub use scenarios::{standard_families, Demand, Scenario, Topology};
pub use solver::{Capabilities, EngineError, Objective, SolveOptions, SolveOutcome, Solver};

/// One-stop imports for engine users.
pub mod prelude {
    pub use crate::fleet::{Fleet, FleetConfig, FleetJob, FleetReport};
    pub use crate::registry::Registry;
    pub use crate::scenarios::{standard_families, Demand, Scenario, Topology};
    pub use crate::solver::{
        Capabilities, EngineError, Objective, SolveOptions, SolveOutcome, Solver,
    };
}
