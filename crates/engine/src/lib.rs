//! # `replica-engine` — unified solver registry + parallel fleet runner
//!
//! The algorithms of `replica-core` are free functions with per-algorithm
//! signatures; this crate turns them into one subsystem (see
//! `docs/ARCHITECTURE.md` at the repository root for the full crate map
//! and data-flow diagrams):
//!
//! 1. **[`solver`]** — the uniform [`Solver`] trait: every algorithm
//!    becomes `solve(&Instance, &SolveOptions) -> SolveOutcome`, with
//!    per-solve wall-clock timing, capability flags (mode support,
//!    pre-existing exploitation, cost-budget handling, exactness,
//!    amortized sweeps) and metrics re-derived through the model crate's
//!    independent Eq. 2/3/4 evaluation so outcomes are always comparable.
//! 2. **[`registry`]** — a name-addressable [`Registry`] covering all ten
//!    algorithms (the pruned exact DP as the default `dp_power`, the
//!    full-state DP as its `dp_power_full` cross-check, both greedy
//!    baselines, the three §6 heuristics and the exhaustive oracle).
//! 3. **[`sweep`]** — the amortized budget-sweep API: one run per
//!    instance returns the whole budget → (cost, power) [`Frontier`]
//!    through [`Registry::sweep`], natively where the algorithm amortizes
//!    (the DPs, the capacity-swept `GR`, the oracle) and via a generic
//!    per-budget adapter everywhere else.
//! 4. **[`fleet`]** — the rayon-powered [`Fleet`] runner: labelled
//!    instances × solvers evaluated in parallel with deterministic
//!    per-instance seeding ([`seeding`]) and folded, in job order, into
//!    per-`(scenario, solver)` **streaming accumulators** ([`stream`]) —
//!    cost/power/gap distributions with P² percentile sketches,
//!    optimality gaps and speedups against the exact DP — without ever
//!    materializing the cell matrix. Jobs come from an **indexed lazy
//!    [`JobSpace`]** ([`jobspace`]): `index → FleetJob` as a pure
//!    function of the global job index, so running any contiguous range
//!    constructs only that range's jobs. Shard-scoped entry points
//!    ([`Fleet::run_space_shard_recorded`], [`FleetFold`],
//!    [`GroupState`], [`RecordedMetric`]) let `replica-fleetd` split a
//!    fleet across processes — each worker `O(shard)` in generation and
//!    memory — and merge the pieces back byte-identically.
//! 5. **[`spec`]** — the declarative campaign API: [`CampaignSpec`], the
//!    single serde-serializable, *validated* description of any run
//!    (named scenario sets or inline scenario lists, solver lineup,
//!    reference, seed, batching, cost bound, budget grid, output
//!    format), with a fluent builder, JSON load/save, and the typed
//!    [`SpecError`] whose messages carry did-you-mean suggestions.
//!    Validation at load time resolves a spec into a [`Campaign`] — the
//!    self-contained form `fleetd` plans embed and the wire seam a
//!    multi-host dispatcher will ship. Committed examples:
//!    `examples/campaigns/` at the repository root. **[`output`]**
//!    renders any [`fleet::FleetReport`] in the spec-addressable
//!    formats (table / CSV / JSON, each with a deterministic variant).
//!
//! **[`scenarios`]** supplies the fleets: named, reproducible instance
//! families crossing five topology shapes (fat, high, binary,
//! caterpillar, star) with seven demand patterns — the paper-aligned
//! four (uniform, skewed, flash-crowd, drifting) plus three churn
//! families backed by `replica-sim` evolutions (walk-drift over rounds,
//! quiet churn, heterogeneous per-subtree mixes).
//!
//! ## Quickstart
//!
//! ```
//! use replica_engine::prelude::*;
//!
//! // One instance, three algorithms, uniform interface.
//! let scenario = Scenario::new(Topology::High, Demand::Uniform, 20);
//! let instance = scenario.instance(42, 0);
//! let registry = Registry::with_all();
//! let options = SolveOptions::default();
//! let exact = registry.solve("dp_power", &instance, &options).unwrap();
//! let greedy = registry.solve("greedy_power", &instance, &options).unwrap();
//! assert!(exact.power <= greedy.power + 1e-9);
//!
//! // One amortized run answers every cost budget (Figures 8–11 style).
//! let budgets: Vec<f64> = (5..=40).map(f64::from).collect();
//! let sweep = registry.sweep("dp_power", &instance, &options, &budgets).unwrap();
//! assert!(sweep.amortized);
//! assert_eq!(
//!     sweep.frontier.best_within(f64::INFINITY).map(|p| p.power),
//!     Some(exact.power),
//! );
//!
//! // A seeded fleet, described declaratively: the spec validates
//! // against the registry before any job runs, then the runner streams
//! // jobs lazily from the campaign's indexed job space.
//! let campaign = CampaignSpec::builder()
//!     .scenarios([scenario])
//!     .instances_per_scenario(4)
//!     .solvers(["dp_power", "greedy_power"])
//!     .seed(42)
//!     .build()
//!     .validate(&registry)
//!     .unwrap();
//! let fleet = Fleet::try_new(&registry, campaign.fleet_config()).unwrap();
//! let report = fleet.run_space(&campaign.space());
//! assert_eq!(report.summaries.len(), 2);
//! println!("{}", report.table());
//! ```

#![warn(missing_docs)]

pub mod fleet;
pub mod jobspace;
pub mod output;
pub mod registry;
pub mod scenarios;
pub mod seeding;
pub mod solver;
pub mod spec;
pub mod stream;
pub mod sweep;

pub use fleet::{
    CancelToken, CellOutcome, CellResult, Fleet, FleetCell, FleetConfig, FleetFold, FleetJob,
    FleetReport, FleetSummary, GroupState, ShardRun,
};
pub use jobspace::{CountingSpace, JobSpace, ScenarioSpace};
pub use output::{render, OutputFormat};
pub use registry::Registry;
pub use scenarios::{
    churn_families, extended_families, standard_families, Demand, Scenario, Topology,
};
pub use solver::{Capabilities, EngineError, Objective, SolveOptions, SolveOutcome, Solver};
pub use spec::{
    Campaign, CampaignSpec, CampaignSpecBuilder, ScenarioSet, ScenarioSetRef, SpecError,
};
pub use stream::{MetricAccumulator, RecordedMetric, Stats};
pub use sweep::{BudgetSweepSolver, Frontier, FrontierPoint, SweepOutcome};

/// The out-of-band telemetry layer (re-export of `replica-obs`): the
/// [`Obs`](replica_obs::Obs) handle the traced fleet entry points
/// consume, its [`Sink`](replica_obs::Sink)s, spans and events.
pub use replica_obs as obs;

/// One-stop imports for engine users.
pub mod prelude {
    pub use crate::fleet::{Fleet, FleetConfig, FleetFold, FleetJob, FleetReport};
    pub use crate::jobspace::{CountingSpace, JobSpace, ScenarioSpace};
    pub use crate::output::{render, OutputFormat};
    pub use crate::registry::Registry;
    pub use crate::scenarios::{
        churn_families, extended_families, standard_families, Demand, Scenario, Topology,
    };
    pub use crate::solver::{
        Capabilities, EngineError, Objective, SolveOptions, SolveOutcome, Solver,
    };
    pub use crate::spec::{
        Campaign, CampaignSpec, CampaignSpecBuilder, ScenarioSet, ScenarioSetRef, SpecError,
    };
    pub use crate::sweep::{BudgetSweepSolver, Frontier, FrontierPoint, SweepOutcome};
    pub use replica_obs::{Obs, Verbosity};
}
