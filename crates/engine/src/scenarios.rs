//! Named instance families: topology × demand-pattern generators beyond
//! the paper's own evaluation setup.
//!
//! A [`Scenario`] is a reproducible instance distribution: topology shape,
//! demand pattern, size and the paper's Experiment-3 mode/cost/power
//! parameters. `scenario.instance(seed, index)` is a pure function of its
//! arguments — byte-identical for a fixed seed — which is what lets a
//! [`ScenarioSpace`](crate::jobspace::ScenarioSpace) hand the
//! [`Fleet`](crate::fleet::Fleet) runner jobs lazily, by global index,
//! without ever materializing the campaign.
//!
//! ## Topology families
//!
//! | [`Topology`] | Shape | Paper relation |
//! |---|---|---|
//! | `Fat` | random, 6–9 children | §5.1 Experiments 1–2 and §5.2 Experiment 3 trees |
//! | `High` | random, 2–4 children | the "high trees" of Figures 6, 7 and 10 |
//! | `Binary` | random, exactly 2 children | limit of the high-tree family (maximum height for a branching tree) |
//! | `Caterpillar` | spine with one leaf-leg per spine node | §2.1 worst case for server chains: every request path shares the spine |
//! | `Star` | root with `N − 1` leaf children | §2.1 worst case for node degree: the root merge dominates |
//!
//! ## Demand patterns
//!
//! | [`Demand`] | Volumes | Paper relation |
//! |---|---|---|
//! | `Uniform` | i.i.d. uniform `1..=5` | the paper's client draws (§5.1 uses 1–6, §5.2 uses 1–5) |
//! | `Skewed` | power-law, mostly 1 with rare `W_M`-sized bursts | generalizes §5 beyond uniform volumes |
//! | `FlashCrowd` | baseline 1, one random subtree saturated at `W_M` | the localized burst that §6's update strategies must absorb |
//! | `Drifting` | gradient from 1 up to `W_M` across the client order | the drift regime of §6 (Experiment 2 re-draws volumes; drift is its adversarial cousin) |
//!
//! ## Churn families (via `replica-sim`)
//!
//! Three further patterns snapshot what a placement faces *after* the
//! dynamic evolutions of [`replica_sim::Evolution`] have run for a while
//! — the §6 setting where request volumes change between reconfiguration
//! steps. They are kept out of [`Demand::all`] (and
//! [`standard_families`]) so the paper-aligned 5 × 4 cross product stays
//! stable; [`churn_families`] / [`extended_families`] add them in.
//!
//! | [`Demand`] | Volumes | Sim relation |
//! |---|---|---|
//! | `WalkDrift` | uniform start, then [`WALK_DRIFT_ROUNDS`] rounds of ±1 random walk | cumulative [`replica_sim::Evolution::RandomWalk`] drift over rounds |
//! | `QuietChurn` | uniform re-draw with clients independently going quiet (volume 0) | one [`replica_sim::Evolution::Churn`] step — bursty on/off churn |
//! | `SubtreeMix` | each root subtree draws its own pattern (uniform / skewed / saturated) | heterogeneous per-subtree demand mixes |

use crate::seeding;
use rand::rngs::StdRng;
use rand::Rng;
use replica_model::{CostModel, Instance, ModeSet, PowerModel, PreExisting};
use replica_sim::Evolution;
use replica_tree::{generate, GeneratorConfig, NodeId, Tree};
use serde::{Deserialize, Serialize};

/// Random-walk rounds behind [`Demand::WalkDrift`].
pub const WALK_DRIFT_ROUNDS: usize = 10;

/// Probability of a client going quiet under [`Demand::QuietChurn`].
pub const QUIET_PROBABILITY: f64 = 0.25;

/// Tree-shape family of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Random tree with 6–9 children per node (the paper's default).
    Fat,
    /// Random tree with 2–4 children per node (the paper's "high trees").
    High,
    /// Random strictly binary tree.
    Binary,
    /// Deterministic caterpillar: a spine with one client leg per node.
    Caterpillar,
    /// Deterministic star: a root with `N − 1` client leaves.
    Star,
}

impl Topology {
    /// Short lowercase label used in scenario names.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Fat => "fat",
            Topology::High => "high",
            Topology::Binary => "binary",
            Topology::Caterpillar => "caterpillar",
            Topology::Star => "star",
        }
    }

    /// All topology families.
    pub fn all() -> [Topology; 5] {
        [
            Topology::Fat,
            Topology::High,
            Topology::Binary,
            Topology::Caterpillar,
            Topology::Star,
        ]
    }

    /// Builds a tree of roughly `nodes` internal nodes (exactly `nodes`
    /// for the random families). Client volumes are placeholders until a
    /// [`Demand`] is applied.
    fn build(self, nodes: usize, rng: &mut StdRng) -> Tree {
        assert!(nodes >= 2, "scenarios need at least two internal nodes");
        let random = |children: (usize, usize), rng: &mut StdRng| {
            let config = GeneratorConfig {
                internal_nodes: nodes,
                children_range: children,
                // Every node carries a client so demand patterns are fully
                // expressive (the paper's Experiment 3 does the same).
                client_probability: 1.0,
                requests_range: (1, 1),
            };
            generate::random_tree(&config, rng)
        };
        match self {
            Topology::Fat => random((6, 9), rng),
            Topology::High => random((2, 4), rng),
            Topology::Binary => random((2, 2), rng),
            Topology::Caterpillar => generate::caterpillar(nodes / 2, 1),
            Topology::Star => generate::star(nodes - 1, 1),
        }
    }
}

/// Client-demand family of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Demand {
    /// I.i.d. uniform volumes in `1..=5` (the paper's setup).
    Uniform,
    /// Power-law volumes: mostly 1, occasionally up to `W_M`.
    Skewed,
    /// Volume 1 everywhere except one random subtree saturated at `W_M`.
    FlashCrowd,
    /// Volumes rise from 1 to `W_M` across the client order (spatial
    /// drift), with ±1 jitter.
    Drifting,
    /// Uniform start evolved through [`WALK_DRIFT_ROUNDS`] rounds of the
    /// sim's ±1 random walk — temporal drift accumulated over
    /// reconfiguration intervals.
    WalkDrift,
    /// Uniform re-draw with clients independently quiet (volume 0) with
    /// probability [`QUIET_PROBABILITY`] — the sim's bursty on/off churn.
    QuietChurn,
    /// Heterogeneous per-subtree mixes: each subtree under the root
    /// cycles through uniform / skewed / saturated demand.
    SubtreeMix,
}

impl Demand {
    /// Short lowercase label used in scenario names.
    pub fn label(self) -> &'static str {
        match self {
            Demand::Uniform => "uniform",
            Demand::Skewed => "skewed",
            Demand::FlashCrowd => "flashcrowd",
            Demand::Drifting => "drifting",
            Demand::WalkDrift => "walkdrift",
            Demand::QuietChurn => "quietchurn",
            Demand::SubtreeMix => "subtreemix",
        }
    }

    /// The paper-aligned demand patterns (the [`standard_families`]
    /// cross product).
    pub fn all() -> [Demand; 4] {
        [
            Demand::Uniform,
            Demand::Skewed,
            Demand::FlashCrowd,
            Demand::Drifting,
        ]
    }

    /// The churn patterns backed by `replica-sim` evolutions.
    pub fn churn() -> [Demand; 3] {
        [Demand::WalkDrift, Demand::QuietChurn, Demand::SubtreeMix]
    }

    /// Every demand pattern: paper-aligned plus churn.
    pub fn all_extended() -> [Demand; 7] {
        let [a, b, c, d] = Demand::all();
        let [e, f, g] = Demand::churn();
        [a, b, c, d, e, f, g]
    }

    /// Overwrites every client volume in `tree` according to the pattern.
    /// Volumes never exceed `w_max`, so one-client-per-node topologies
    /// stay feasible (§2's `client(j) ≤ W_M` criterion).
    fn apply(self, tree: &mut Tree, w_max: u64, rng: &mut StdRng) {
        let clients: Vec<_> = tree.client_ids().collect();
        let n = clients.len().max(1);
        match self {
            Demand::Uniform => {
                for c in clients {
                    tree.set_requests(c, rng.random_range(1..=5u64.min(w_max)));
                }
            }
            Demand::Skewed => {
                for c in clients {
                    let u: f64 = rng.random();
                    let v = ((w_max as f64) * u.powi(4)).round() as u64;
                    tree.set_requests(c, v.clamp(1, w_max));
                }
            }
            Demand::FlashCrowd => {
                for &c in &clients {
                    tree.set_requests(c, 1);
                }
                // Saturate the subtree under a random hot node.
                let hot_index = rng.random_range(0..tree.internal_count());
                let mut stack = vec![NodeId::from_index(hot_index)];
                while let Some(node) = stack.pop() {
                    for c in tree.clients_of(node).to_vec() {
                        tree.set_requests(c, w_max);
                    }
                    stack.extend_from_slice(tree.children(node));
                }
            }
            Demand::Drifting => {
                for (i, c) in clients.into_iter().enumerate() {
                    let base = 1 + (i as u64 * (w_max - 1)) / (n as u64 - 1).max(1);
                    let jitter = rng.random_range(0..=2u64);
                    let v = (base + jitter).saturating_sub(1);
                    tree.set_requests(c, v.clamp(1, w_max));
                }
            }
            Demand::WalkDrift => {
                Demand::Uniform.apply(tree, w_max, rng);
                Evolution::RandomWalk {
                    step: 1,
                    range: (1, w_max),
                }
                .apply_rounds(tree, WALK_DRIFT_ROUNDS, rng);
            }
            Demand::QuietChurn => {
                Evolution::Churn {
                    range: (1, 5u64.min(w_max)),
                    quiet_probability: QUIET_PROBABILITY,
                }
                .apply(tree, rng);
            }
            Demand::SubtreeMix => {
                // Clients attached directly to the root stay at baseline;
                // each root subtree cycles through one of three regimes.
                for c in tree.clients_of(tree.root()).to_vec() {
                    tree.set_requests(c, 1);
                }
                for (i, &top) in tree.children(tree.root()).to_vec().iter().enumerate() {
                    let mut stack = vec![top];
                    while let Some(node) = stack.pop() {
                        for c in tree.clients_of(node).to_vec() {
                            let v = match i % 3 {
                                0 => rng.random_range(1..=5u64.min(w_max)),
                                1 => {
                                    let u: f64 = rng.random();
                                    (((w_max as f64) * u.powi(4)).round() as u64).clamp(1, w_max)
                                }
                                _ => w_max,
                            };
                            tree.set_requests(c, v);
                        }
                        stack.extend_from_slice(tree.children(node));
                    }
                }
            }
        }
    }
}

/// A named, reproducible instance family.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// `"<topology>/<demand>/<nodes>n"`.
    pub name: String,
    /// Tree-shape family.
    pub topology: Topology,
    /// Demand pattern.
    pub demand: Demand,
    /// Internal-node target per tree.
    pub nodes: usize,
    /// Pre-existing servers per tree (placed at the top mode, like the
    /// paper's Experiment 3).
    pub pre_existing: usize,
    /// Mode capacities (paper: `{5, 10}`).
    pub modes: Vec<u64>,
    /// Eq. 4 creation cost (uniform across modes).
    pub create: f64,
    /// Eq. 4 deletion cost.
    pub delete: f64,
    /// Eq. 4 mode-change cost.
    pub changed: f64,
}

impl Scenario {
    /// A scenario with the paper's Experiment-3 parameters.
    pub fn new(topology: Topology, demand: Demand, nodes: usize) -> Self {
        Scenario {
            name: format!("{}/{}/{}n", topology.label(), demand.label(), nodes),
            topology,
            demand,
            nodes,
            pre_existing: nodes / 10,
            modes: vec![5, 10],
            create: 0.1,
            delete: 0.01,
            changed: 0.001,
        }
    }

    /// Builds instance `index` of the fleet seeded by `seed`. The RNG
    /// stream mixes in the scenario name, so instance `i` of different
    /// scenarios draws independently.
    pub fn instance(&self, seed: u64, index: usize) -> Instance {
        let mut rng = seeding::rng(seed ^ seeding::label_stream(&self.name), index as u64);
        let modes = ModeSet::new(self.modes.clone()).expect("scenario modes are valid");
        let w_max = modes.max_capacity();
        let mut tree = self.topology.build(self.nodes, &mut rng);
        self.demand.apply(&mut tree, w_max, &mut rng);
        let pre = generate::random_pre_existing(&tree, self.pre_existing, &mut rng);
        let top_mode = modes.count() - 1;
        let power = PowerModel::paper_experiment3(&modes);
        Instance::builder(tree)
            .pre_existing(PreExisting::at_mode(pre, top_mode))
            .cost(CostModel::uniform(
                modes.count(),
                self.create,
                self.delete,
                self.changed,
            ))
            .power(power)
            .modes(modes)
            .build()
            .expect("scenario instances are structurally valid")
    }

    /// Builds a whole seeded fleet.
    pub fn instances(&self, seed: u64, count: usize) -> Vec<Instance> {
        (0..count).map(|i| self.instance(seed, i)).collect()
    }
}

/// The paper-aligned topology × demand cross product at the given size
/// (20 scenarios).
pub fn standard_families(nodes: usize) -> Vec<Scenario> {
    let mut out = Vec::new();
    for topology in Topology::all() {
        for demand in Demand::all() {
            out.push(Scenario::new(topology, demand, nodes));
        }
    }
    out
}

/// The topology × churn-demand cross product at the given size (15
/// scenarios): the `replica-sim` evolutions as static instance families.
pub fn churn_families(nodes: usize) -> Vec<Scenario> {
    let mut out = Vec::new();
    for topology in Topology::all() {
        for demand in Demand::churn() {
            out.push(Scenario::new(topology, demand, nodes));
        }
    }
    out
}

/// Every family: [`standard_families`] plus [`churn_families`] (35
/// scenarios).
pub fn extended_families(nodes: usize) -> Vec<Scenario> {
    let mut out = standard_families(nodes);
    out.extend(churn_families(nodes));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_covers_all_families() {
        let families = standard_families(30);
        assert_eq!(families.len(), 20);
        let extended = extended_families(30);
        assert_eq!(extended.len(), 35, "20 standard + 15 churn");
        let mut names: Vec<_> = extended.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 35, "scenario names must be unique");
    }

    #[test]
    fn instances_are_reproducible_and_feasible() {
        for scenario in extended_families(24) {
            let a = scenario.instance(7, 3);
            let b = scenario.instance(7, 3);
            assert_eq!(
                serde_json::to_string(a.tree()).unwrap(),
                serde_json::to_string(b.tree()).unwrap(),
                "{}: same seed must give the same tree",
                scenario.name
            );
            assert!(
                a.feasible(),
                "{}: scenario instances must be feasible",
                scenario.name
            );
            let c = scenario.instance(8, 3);
            assert_ne!(
                serde_json::to_string(a.tree()).unwrap(),
                serde_json::to_string(c.tree()).unwrap(),
                "{}: different seeds must differ",
                scenario.name
            );
        }
    }

    #[test]
    fn demand_patterns_shape_volumes() {
        let scenario = |demand| Scenario::new(Topology::Fat, demand, 60);

        // Flash crowd: at least one client saturated, most at baseline.
        let inst = scenario(Demand::FlashCrowd).instance(3, 0);
        let tree = inst.tree();
        let volumes: Vec<u64> = tree.client_ids().map(|c| tree.requests(c)).collect();
        assert!(volumes.contains(&10), "a hot client at W_M");
        assert!(
            volumes.iter().filter(|&&v| v == 1).count() * 2 > volumes.len(),
            "baseline clients dominate"
        );

        // Skewed: median must sit low, max above the uniform ceiling.
        let inst = scenario(Demand::Skewed).instance(3, 0);
        let tree = inst.tree();
        let mut volumes: Vec<u64> = tree.client_ids().map(|c| tree.requests(c)).collect();
        volumes.sort_unstable();
        assert!(volumes[volumes.len() / 2] <= 2, "skewed median is small");

        // Drifting: later clients ask for more on average.
        let inst = scenario(Demand::Drifting).instance(3, 0);
        let tree = inst.tree();
        let volumes: Vec<u64> = tree.client_ids().map(|c| tree.requests(c)).collect();
        let half = volumes.len() / 2;
        let early: u64 = volumes[..half].iter().sum();
        let late: u64 = volumes[half..].iter().sum();
        assert!(late > early, "drift must rise across the client order");
    }

    #[test]
    fn churn_patterns_shape_volumes() {
        let scenario = |demand| Scenario::new(Topology::Fat, demand, 60);

        // Quiet churn: some clients off, the rest in the active range.
        let inst = scenario(Demand::QuietChurn).instance(3, 0);
        let tree = inst.tree();
        let volumes: Vec<u64> = tree.client_ids().map(|c| tree.requests(c)).collect();
        let quiet = volumes.iter().filter(|&&v| v == 0).count();
        assert!(quiet > 0, "p = 0.25 should silence someone");
        assert!(quiet * 2 < volumes.len(), "most clients stay active");
        assert!(volumes.iter().all(|&v| v <= 5), "active range is 1..=5");

        // Walk drift: everything in range, and the walk actually moved
        // the profile away from a plain uniform draw.
        let walked = scenario(Demand::WalkDrift).instance(3, 0);
        let wtree = walked.tree();
        let wvol: Vec<u64> = wtree.client_ids().map(|c| wtree.requests(c)).collect();
        let w_max = walked.max_capacity();
        assert!(wvol.iter().all(|&v| (1..=w_max).contains(&v)));
        assert!(
            wvol.iter().any(|&v| v > 5),
            "ten ±1 rounds push some client past the uniform ceiling"
        );

        // Subtree mix: the saturated subtrees give the instance both
        // baseline and W_M volumes.
        let mixed = scenario(Demand::SubtreeMix).instance(3, 0);
        let mtree = mixed.tree();
        let mvol: Vec<u64> = mtree.client_ids().map(|c| mtree.requests(c)).collect();
        assert!(mvol.contains(&mixed.max_capacity()), "a saturated subtree");
        assert!(mvol.iter().any(|&v| v < mixed.max_capacity()), "a mild one");
    }

    #[test]
    fn churn_instances_are_solvable_by_the_exact_dp() {
        use crate::registry::Registry;
        use crate::solver::SolveOptions;
        let registry = Registry::with_all();
        for scenario in churn_families(14) {
            let instance = scenario.instance(5, 0);
            let outcome = registry
                .solve("dp_power", &instance, &SolveOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(outcome.power > 0.0, "{}", scenario.name);
        }
    }

    #[test]
    fn deterministic_topologies_have_expected_shape() {
        let cat = Scenario::new(Topology::Caterpillar, Demand::Uniform, 40).instance(1, 0);
        assert_eq!(cat.tree().internal_count(), 40);
        let star = Scenario::new(Topology::Star, Demand::Uniform, 40).instance(1, 0);
        assert_eq!(star.tree().children(star.tree().root()).len(), 39);
    }
}
