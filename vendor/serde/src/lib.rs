//! Vendored minimal stand-in for `serde` (offline build).
//!
//! The build environment has no crate registry, so this crate provides the
//! subset of serde's surface the workspace uses — the [`Serialize`] /
//! [`Deserialize`] traits with their derive macros, [`Deserializer`] and
//! [`de::Error`] — over a much simpler data model: serialization produces a
//! [`Value`] tree directly (no visitor machinery), and deserialization
//! consumes one. `serde_json` (also vendored) renders and parses that
//! tree.
//!
//! Derive support (see `serde_derive`): named-field structs, newtype
//! structs (transparent), enums with unit and struct variants, and the
//! container attributes `#[serde(transparent)]` and
//! `#[serde(try_from = "...", into = "...")]`.

pub use serde_derive::{Deserialize, Serialize};

use crate::de::Error as _;

/// A self-describing serialized tree (the wire-agnostic data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (fits every integral type the workspace serializes).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved; duplicate keys never
    /// produced by this crate).
    Object(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Produces the value tree of `self`.
    fn serialize(&self) -> Value;
}

/// Error plumbing (subset of `serde::de`).
pub mod de {
    /// Errors a [`Deserializer`](crate::Deserializer) can produce.
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A source of one [`Value`] (subset of serde's `Deserializer`).
pub trait Deserializer<'de> {
    /// Error type reported by this source.
    type Error: de::Error;
    /// Consumes the source, yielding its value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types reconstructible from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The plain-string error used when deserializing out of a [`Value`].
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl de::Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A [`Deserializer`] over an owned [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value tree.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;
    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}

/// Deserializes a `T` out of an owned value tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Support code for the derive macros (not part of the public API).
pub mod __private {
    use super::*;

    /// Field-by-field extractor over an object's entries.
    pub struct FieldMap {
        entries: Vec<(String, Value)>,
    }

    impl FieldMap {
        /// Expects `value` to be an object.
        pub fn new(value: Value, type_name: &str) -> Result<Self, DeError> {
            match value {
                Value::Object(entries) => Ok(FieldMap { entries }),
                other => Err(DeError(format!(
                    "{type_name}: expected an object, found {}",
                    other.kind()
                ))),
            }
        }

        /// Removes and returns the named field (`Null` when absent, which
        /// lets `Option` fields default to `None`).
        pub fn take(&mut self, name: &str) -> Value {
            match self.entries.iter().position(|(k, _)| k == name) {
                Some(i) => self.entries.remove(i).1,
                None => Value::Null,
            }
        }
    }

    /// Deserializes one struct field, contextualizing errors.
    pub fn field<'de, T: Deserialize<'de>>(
        map: &mut FieldMap,
        type_name: &str,
        name: &str,
    ) -> Result<T, DeError> {
        from_value(map.take(name)).map_err(|e| DeError(format!("{type_name}.{name}: {e}")))
    }

    /// Splits an externally tagged enum value into `(tag, payload)`.
    pub fn enum_parts(value: Value, type_name: &str) -> Result<(String, Value), DeError> {
        match value {
            Value::Str(tag) => Ok((tag, Value::Null)),
            Value::Object(mut entries) if entries.len() == 1 => {
                let (tag, payload) = entries.remove(0);
                Ok((tag, payload))
            }
            other => Err(DeError(format!(
                "{type_name}: expected a variant tag, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    /// A value tree serializes as itself — this is what lets callers
    /// hand-build documents (`serde_json::to_string(&value)`) when the
    /// derive subset cannot express their shape.
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    /// Maps serialize as arrays of `[key, value]` pairs (keys need not be
    /// strings, unlike JSON objects).
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

fn take<'de, D: Deserializer<'de>>(d: D) -> Result<Value, D::Error> {
    d.take_value()
}

fn mismatch<E: de::Error>(expected: &str, found: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", found.kind()))
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match take(d)? {
                    Value::Int(i) => <$t>::try_from(i).map_err(|_| {
                        D::Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(mismatch(stringify!($t), &other)),
                }
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            other => Err(mismatch("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Bool(b) => Ok(b),
            other => Err(mismatch("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Str(s) => Ok(s),
            other => Err(mismatch("string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::custom))
                .collect(),
            other => Err(mismatch("array", &other)),
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Array(items) => items
                .into_iter()
                .map(|pair| from_value::<(K, V)>(pair).map_err(D::Error::custom))
                .collect(),
            other => Err(mismatch("array of [key, value] pairs", &other)),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Array(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
                let b = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
                Ok((a, b))
            }
            other => Err(mismatch("2-element array", &other)),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match take(d)? {
            Value::Array(items) if items.len() == 3 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
                let b = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
                let c = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
                Ok((a, b, c))
            }
            other => Err(mismatch("3-element array", &other)),
        }
    }
}
