//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for the sibling vendored `serde` crate.
//!
//! Implemented without `syn`/`quote` (no crate registry in the build
//! environment): the derive input is walked token-by-token, which is
//! sufficient for the shapes this workspace uses — named-field structs,
//! single-field tuple structs (serialized transparently), and enums with
//! unit or struct variants — plus the container attributes
//! `#[serde(transparent)]` and `#[serde(try_from = "…", into = "…")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// What a derive input parsed into.
struct Input {
    name: String,
    attrs: ContainerAttrs,
    kind: Kind,
}

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with the given arity (only arity 1 is supported).
    Tuple(usize),
    /// Enum: `(variant, None)` for unit, `(variant, Some(fields))` for
    /// struct variants.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(stream: TokenStream) -> Input {
    let mut iter = stream.into_iter().peekable();
    let attrs = skip_attrs(&mut iter);
    skip_visibility(&mut iter);
    let keyword = expect_ident(&mut iter);
    let name = expect_ident(&mut iter);
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic type `{name}`");
    }
    let kind = match keyword.as_str() {
        "struct" => parse_struct_body(&mut iter, &name),
        "enum" => parse_enum_body(&mut iter, &name),
        other => panic!("derive input must be a struct or enum, found `{other}`"),
    };
    Input { name, attrs, kind }
}

/// Skips (and inspects) leading attributes, returning any serde container
/// configuration found.
fn skip_attrs(iter: &mut TokenIter) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        let Some(TokenTree::Group(group)) = iter.next() else {
            panic!("`#` must be followed by a bracketed attribute");
        };
        let mut inner = group.stream().into_iter();
        if let Some(TokenTree::Ident(id)) = inner.next() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    parse_serde_attr(&args.stream().to_string(), &mut attrs);
                }
            }
        }
    }
    attrs
}

/// Extracts `transparent` / `try_from` / `into` from a `serde(...)` body
/// rendered as a string (e.g. `try_from = "Vec<u64>", into = "Vec<u64>"`).
fn parse_serde_attr(body: &str, attrs: &mut ContainerAttrs) {
    for part in split_top_level_commas(body) {
        let part = part.trim();
        if part == "transparent" {
            attrs.transparent = true;
        } else if let Some(rest) = part.strip_prefix("try_from") {
            attrs.try_from = Some(unquote(rest));
        } else if let Some(rest) = part.strip_prefix("into") {
            attrs.into = Some(unquote(rest));
        }
        // Unknown keys are ignored, like real serde ignores other crates'.
    }
}

/// Splits on commas that are not nested in quotes (sufficient for
/// attribute bodies, which contain no bracket nesting outside strings).
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// `= "Vec<u64>"` → `Vec<u64>` (tolerating the spacing `to_string`
/// inserts between tokens).
fn unquote(rest: &str) -> String {
    let rest = rest.trim().trim_start_matches('=').trim();
    rest.trim_matches('"').replace(' ', "")
}

fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn expect_ident(iter: &mut TokenIter) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn parse_struct_body(iter: &mut TokenIter, name: &str) -> Kind {
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Kind::Struct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("struct `{name}` has an unsupported body: {other:?}"),
    }
}

/// Field names of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        fields.push(expect_ident(&mut iter));
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type: everything until a comma outside angle
        // brackets (parens/brackets arrive pre-grouped, so only `<`/`>`
        // nesting needs manual tracking).
        let mut angle_depth = 0usize;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0usize;
    let mut saw_tokens = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_enum_body(iter: &mut TokenIter, name: &str) -> Kind {
    let Some(TokenTree::Group(g)) = iter.next() else {
        panic!("enum `{name}` has no body");
    };
    let mut iter = g.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        let vname = expect_ident(&mut iter);
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Some(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde derive does not support tuple variant `{name}::{vname}`")
            }
            _ => None,
        };
        variants.push((vname, fields));
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
    }
    Kind::Enum(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = if let Some(into) = &input.attrs.into {
        format!(
            "let proxy: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::serialize(&proxy)"
        )
    } else {
        match &input.kind {
            Kind::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
            Kind::Tuple(n) => panic!("tuple struct `{name}` has {n} fields; only 1 supported"),
            Kind::Struct(fields) => {
                let entries: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), \
                             ::serde::Serialize::serialize(&self.{f})),"
                        )
                    })
                    .collect();
                format!("::serde::Value::Object(::std::vec![{entries}])")
            }
            Kind::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|(v, fields)| match fields {
                        None => format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from({v:?})),"
                        ),
                        Some(fields) => {
                            let bind = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {bind} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({v:?}), \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                    })
                    .collect();
                format!("match self {{ {arms} }}")
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let custom = "<D::Error as ::serde::de::Error>::custom";
    let body = if let Some(try_from) = &input.attrs.try_from {
        format!(
            "let proxy: {try_from} = ::serde::Deserialize::deserialize(deserializer)?;\n\
             <Self as ::std::convert::TryFrom<{try_from}>>::try_from(proxy)\
                 .map_err(|e| {custom}(e))"
        )
    } else {
        match &input.kind {
            Kind::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize(deserializer)?))"
            ),
            Kind::Tuple(n) => panic!("tuple struct `{name}` has {n} fields; only 1 supported"),
            Kind::Struct(fields) => {
                let assigns: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::__private::field(&mut map, {name:?}, {f:?})\
                             .map_err(|e| {custom}(e))?,"
                        )
                    })
                    .collect();
                format!(
                    "let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                     let mut map = ::serde::__private::FieldMap::new(value, {name:?})\
                         .map_err(|e| {custom}(e))?;\n\
                     ::std::result::Result::Ok({name} {{ {assigns} }})"
                )
            }
            Kind::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|(v, fields)| match fields {
                        None => format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"),
                        Some(fields) => {
                            let context = format!("{name}::{v}");
                            let assigns: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__private::field(\
                                         &mut map, {context:?}, {f:?})\
                                         .map_err(|e| {custom}(e))?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{v:?} => {{\n\
                                 let mut map = ::serde::__private::FieldMap::new(\
                                     payload, {context:?}).map_err(|e| {custom}(e))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {assigns} }})\n\
                                 }},"
                            )
                        }
                    })
                    .collect();
                format!(
                    "let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                     let (tag, payload) = ::serde::__private::enum_parts(value, {name:?})\
                         .map_err(|e| {custom}(e))?;\n\
                     let _ = &payload;\n\
                     match tag.as_str() {{ {arms} other => ::std::result::Result::Err(\
                     {custom}(::std::format!(\"unknown variant `{{other}}` of {name}\"))), }}"
                )
            }
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                 -> ::std::result::Result<Self, D::Error> {{\n{body}\n}}\n\
         }}"
    )
}
