//! Vendored minimal stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to a crate registry, so the
//! workspace ships this deterministic, dependency-free implementation of
//! exactly the surface the repository uses: [`Rng::random`],
//! [`Rng::random_range`], [`Rng::random_bool`], [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic from a seed, which is all the experiment
//! harness requires (no test in this workspace pins the *specific* stream
//! of the upstream `StdRng`; they pin reproducibility, ranges and
//! statistical behavior).

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`Range` or `RangeInclusive`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (panics unless `0 ≤ p ≤ 1`).
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        // Strict `<` keeps p = 0.0 always-false; p = 1.0 is forced true
        // because `sample` never returns exactly 1.0.
        f64::sample(self) < p || p >= 1.0
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw generator output (subset of the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a [`Rng`] can sample from (subset of `rand::distr::uniform`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; the workspace only relies on seed-reproducibility, not on
    /// the upstream stream).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: u64 = StdRng::seed_from_u64(1).random();
        let b: u64 = StdRng::seed_from_u64(1).random();
        let c: u64 = StdRng::seed_from_u64(2).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.random_range(0usize..5);
            assert!(w < 5);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probabilities_behave() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 hit {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle staying sorted is ~impossible"
        );
    }
}
