//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The build environment has no crate registry, so this crate implements
//! the subset of rayon's API the workspace uses — `into_par_iter()` /
//! `par_iter()` / `par_chunks()` with `map` / `collect` / `reduce` /
//! `for_each`, [`current_num_threads`] and a [`ThreadPoolBuilder`] whose
//! pools scope a thread-count override — on top of `std::thread::scope`.
//!
//! Semantics preserved from real rayon:
//! * `collect::<Vec<_>>()` returns results **in input order** regardless of
//!   scheduling, so seeded pipelines stay deterministic;
//! * closures run concurrently on up to [`current_num_threads`] OS threads;
//! * `reduce` folds per-thread partials with the caller's associative op.
//!
//! Unlike real rayon there is no work-stealing: items are split into
//! contiguous chunks, one per worker. For the coarse per-instance /
//! per-tree grains this workspace parallelizes over, that is the same
//! schedule rayon's `with_min_len` tuning would aim for anyway.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Per-thread thread-count override (0 = use the machine's
    /// parallelism). Thread-local so concurrent [`ThreadPool::install`]
    /// scopes — e.g. two `#[test]`s running in one binary — cannot race
    /// each other or leak an override into unrelated work. Parallel
    /// operations consult it on the *calling* thread when choosing their
    /// worker count.
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations started from this thread
/// will use.
pub fn current_num_threads() -> usize {
    let forced = NUM_THREADS_OVERRIDE.get();
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`] (subset of rayon's).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this implementation.
    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never constructed here).
#[derive(Debug)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for BuildError {}

/// A scoped thread-count override (subset of rayon's `ThreadPool`).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect.
    ///
    /// Unlike real rayon the closure executes on the calling thread; only
    /// the worker count used by parallel operations inside it changes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = NUM_THREADS_OVERRIDE.replace(self.num_threads);
        let guard = RestoreGuard(prev);
        let result = op();
        drop(guard);
        result
    }
}

struct RestoreGuard(usize);

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        NUM_THREADS_OVERRIDE.set(self.0);
    }
}

/// Runs `f` over `items` on up to [`current_num_threads`] threads,
/// returning outputs in input order.
fn parallel_map<T: Send, U: Send, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().max(1);
    let n = items.len();
    if threads == 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per worker; join order restores input order.
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (lazily; executed by the consumer).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item for its side effects.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, &|t| f(t));
    }
}

/// The result of [`ParIter::map`]: consumable in parallel.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_ordered_vec(parallel_map(self.items, &self.f))
    }

    /// Executes the map in parallel, then folds all outputs with `op`
    /// starting from `identity()` (op must be associative).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U,
    {
        parallel_map(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelIterator<U> {
    /// Builds the collection from outputs already in input order.
    fn from_ordered_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallelIterator<U> for Vec<U> {
    fn from_ordered_vec(v: Vec<U>) -> Self {
        v
    }
}

/// Conversion into a [`ParIter`] (subset of rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Item type yielded in parallel.
    type Item: Send;
    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous `chunk_size`-sized sub-slices.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Glob import mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_and_reduce() {
        let data: Vec<u64> = (1..=100).collect();
        let total = data
            .par_chunks(7)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 2);
        let nested = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| assert_eq!(nested.install(current_num_threads), 5));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0..257usize)
                    .into_par_iter()
                    .map(|i| i * i % 97)
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(16));
    }
}
