//! Vendored minimal stand-in for `serde_json` (offline build): compact
//! JSON rendering and parsing over the vendored `serde` crate's
//! [`Value`] data model.
//!
//! Output format matches upstream `serde_json::to_string`: compact (no
//! whitespace), object fields in declaration order, strings escaped per
//! RFC 8259. Non-finite floats render as `null`, as upstream does.

use serde::{de::Error as _, DeError, Deserialize, Serialize, Value, ValueDeserializer};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
        }
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let value = Parser::new(s).parse()?;
    T::deserialize(ValueDeserializer::new(value)).map_err(|e: DeError| Error::custom(e))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format_float(*f));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

/// Shortest round-tripping decimal, with upstream's `1.0`-style marker so
/// floats re-parse as floats.
fn format_float(f: f64) -> String {
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value, Error> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.fail("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn fail(&self, msg: &str) -> Error {
        Error {
            message: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("invalid literal (expected `{text}`)")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.fail("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.fail("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.fail("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.fail("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.fail("invalid integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Vec<u8>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<(u64, u64)>("[3,9]").unwrap(), (3, 9));
    }

    #[test]
    fn nested_and_whitespace() {
        let v: Vec<Vec<f64>> = from_str(" [ [1.5 , 2 ] , [ ] ] ").unwrap();
        assert_eq!(v, vec![vec![1.5, 2.0], vec![]]);
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("true").is_err());
    }

    #[test]
    fn unicode_strings_round_trip() {
        let s = "héllo → wörld ✓";
        let json = to_string(s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
