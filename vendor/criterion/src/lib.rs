//! Vendored minimal stand-in for `criterion` (offline build).
//!
//! Implements the API subset the bench suite uses — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `criterion_group!` /
//! `criterion_main!` — with a simple measured-median runner instead of
//! criterion's statistical machinery: each benchmark is warmed up once,
//! then timed for a handful of iterations, and the per-iteration median
//! is printed. Good enough to track regressions by eye and to keep
//! `cargo bench` working without a crate registry.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, &mut f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benches a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; nothing to do).
    pub fn finish(&mut self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, not recorded
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    eprintln!(
        "  {label}: median {median:?} over {} samples",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_machinery_runs() {
        benches();
    }
}
