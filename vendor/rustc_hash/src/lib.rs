//! Vendored minimal stand-in for `rustc-hash`: the Fx multiply-mix hasher
//! plus the [`FxHashMap`] / [`FxHashSet`] aliases. This is the actual Fx
//! algorithm (rustc's), re-implemented locally because the build
//! environment has no crate registry; the DP hot paths depend on its
//! speed on small integer keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-mix hasher (not DoS-resistant; fast on short keys).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_distributes() {
        let mut m: FxHashMap<u128, u64> = FxHashMap::default();
        for i in 0..1000u128 {
            m.insert(i << 7, i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(42u128 << 7)), Some(&42));
    }

    #[test]
    fn equal_keys_hash_equal() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        assert_eq!(b.hash_one(123u128), b.hash_one(123u128));
        assert_ne!(b.hash_one(123u128), b.hash_one(124u128));
    }
}
