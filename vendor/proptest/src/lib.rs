//! Vendored minimal stand-in for `proptest` (offline build).
//!
//! Supports the subset the workspace's property tests use: range
//! strategies, tuple strategies, [`Strategy::prop_map`], the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! case number and seed, which — everything being seeded — reproduces
//! deterministically.

use rand::rngs::StdRng;
pub use rand::Rng;
use rand::SeedableRng;
use std::ops::Range;

/// Runner configuration (subset of proptest's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize, i64, i32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (subset of proptest's `collection` module).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the per-case RNG (public so the macro can call it).
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ case as u64)
}

/// Defines property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = result {
                    panic!("case {case} of {}: {message}", stringify!($name));
                }
            }
        }
    )*};
}

/// Discards the case when the assumption fails (no shrinking here, so a
/// discarded case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)*)
            ));
        }
    }};
}

/// Glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..10, 0u64..5).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_pairs_are_ordered(p in pair(), extra in 0u32..3) {
            prop_assert!(p.0 <= p.1, "{:?} inverted", p);
            prop_assert_eq!(extra < 3, true);
        }
    }
}
