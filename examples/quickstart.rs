//! Quickstart: state a replica-placement problem, solve it three ways,
//! inspect the answers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use power_replica::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A reproducible paper-shaped distribution tree: 60 internal nodes,
    //    6–9 children each, a client on half the nodes with 1–6 requests.
    let mut rng = StdRng::seed_from_u64(2011);
    let tree = random_tree(&GeneratorConfig::paper_fat(60), &mut rng);
    println!("=== workload ===\n{}\n", TreeStats::compute(&tree));

    // 2. Suppose 8 servers already exist from a previous configuration.
    let pre = random_pre_existing(&tree, 8, &mut rng);
    println!("pre-existing servers: {pre:?}\n");

    // 3a. The oblivious greedy (GR of [19]): optimal replica count, but it
    //     reuses the pre-existing servers only by accident.
    let greedy = greedy_min_replicas(&tree, 10).expect("feasible at W = 10");
    let gr_reused = pre
        .iter()
        .filter(|&&n| greedy.placement.has_server(n))
        .count();
    println!(
        "GR   : {} servers, {} reused incidentally",
        greedy.servers, gr_reused
    );

    // 3b. The paper's MinCost-WithPre dynamic program (Theorem 1): same
    //     optimal count, minimal reconfiguration cost.
    let instance =
        Instance::min_cost(tree.clone(), 10, pre.clone(), 0.1, 0.01).expect("valid instance");
    let dp = solve_min_cost(&instance).expect("feasible instance");
    println!(
        "DP   : {} servers, {} reused deliberately, cost {:.2}",
        dp.servers, dp.reused, dp.cost
    );
    assert_eq!(dp.servers, greedy.servers, "both are replica-count optimal");

    // 3c. Power-aware placement (Theorem 3): two modes, convex power, and a
    //     reconfiguration budget.
    let modes = ModeSet::new(vec![5, 10]).unwrap();
    let power_model = PowerModel::paper_experiment3(&modes);
    let power_instance = Instance::builder(tree)
        .modes(modes)
        .pre_existing(PreExisting::at_mode(pre, 1))
        .cost(CostModel::uniform(2, 0.1, 0.01, 0.001))
        .power(power_model)
        .build()
        .expect("valid instance");
    let dp = PowerDp::run(&power_instance).expect("feasible instance");
    println!("\n=== power/cost Pareto front ===");
    for (cost, power) in dp.pareto_front() {
        println!("  cost {cost:7.3} → power {power:9.1}");
    }
    let budget = 30.0;
    match dp.best_within(budget) {
        Some(best) => {
            let solution = dp.reconstruct(best).expect("reconstructible");
            println!(
                "\nwithin budget {budget}: {} servers, cost {:.3}, power {:.1}",
                solution.servers, solution.cost, solution.power
            );
        }
        None => println!("\nno solution within budget {budget}"),
    }
}
