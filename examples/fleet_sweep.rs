//! Multi-scenario, multi-solver parallel fleet sweep.
//!
//! Runs every engine scenario family (five topology shapes × seven demand
//! patterns, the three sim-backed churn families included) against four
//! solvers — the default exact power DP (`dp_power`, the pruned
//! reformulation), the paper's full-state DP (`dp_power_full`), the
//! capacity-swept `GR` baseline and the §6 constructive heuristic — in
//! parallel with streaming aggregation, and prints the aggregate table:
//! power/cost distributions (with P² percentiles), optimality gaps
//! against the exact DP, and per-solve timings.
//!
//! ```text
//! cargo run --release --example fleet_sweep
//! ```
//!
//! The run is seeded: repeating it reproduces every number except the
//! timing columns.

use power_replica::engine::prelude::*;

fn main() {
    let registry = Registry::with_all();
    // One declarative spec describes the campaign; validation resolves
    // it (and would catch a typo'd solver name with a did-you-mean
    // suggestion) before any job runs.
    let campaign = CampaignSpec::builder()
        .scenario_set(ScenarioSet::Extended, 40)
        .instances_per_scenario(5)
        .solvers([
            "dp_power",
            "dp_power_full",
            "greedy_power",
            "heur_power_greedy",
        ])
        .reference("dp_power")
        .seed(0x5EED)
        .build()
        .validate(&registry)
        .expect("the spec is valid");
    println!(
        "fleet: {} scenarios × {} instances × {} solvers = {} solves\n",
        campaign.scenarios.len(),
        campaign.instances_per_scenario,
        campaign.solvers.len(),
        campaign.job_count() * campaign.solvers.len(),
    );

    // The indexed lazy job space: instances are generated on demand, one
    // streaming batch at a time — the campaign is never materialized.
    let fleet = Fleet::try_new(&registry, campaign.fleet_config()).expect("validated config");
    let report = fleet.run_space(&campaign.space());
    println!("{}", report.table());

    // Headline: how far from optimal are the polynomial-time solvers on
    // each demand pattern?
    for demand in [
        "uniform",
        "skewed",
        "flashcrowd",
        "drifting",
        "walkdrift",
        "quietchurn",
        "subtreemix",
    ] {
        let gaps: Vec<f64> = report
            .summaries
            .iter()
            .filter(|s| s.scenario.contains(demand) && s.solver == "greedy_power")
            .filter_map(|s| s.power_gap_vs_ref)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        println!(
            "GR mean power excess on {demand:>10} demand: {:+.2}%",
            (mean - 1.0) * 100.0
        );
    }
}
