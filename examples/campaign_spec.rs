//! Declarative campaigns: load a spec file, validate it, run it.
//!
//! The whole run — scenarios, solver lineup, seed, batch size, output
//! preference — is described by one JSON document (the engine's
//! [`CampaignSpec`]). Validation happens at load time against the
//! solver registry and the scenario families, so a typo'd solver name
//! dies with a "did you mean?" before any job runs; a valid spec
//! resolves into the self-contained `Campaign` that `fleetd` also
//! shards across processes (`fleetd run --spec FILE`).
//!
//! ```text
//! cargo run --release --example campaign_spec [SPEC.json]
//! ```
//!
//! Defaults to the committed `examples/campaigns/inline-worst-cases.json`
//! (two inline worst-case scenario families under a cost bound).

use power_replica::engine::{render, CampaignSpec, Fleet, Registry, ScenarioSet};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/campaigns/inline-worst-cases.json".into());

    let registry = Registry::with_all();

    // Load → validate. Both steps return a typed SpecError with an
    // actionable message; demonstrate the did-you-mean on a broken spec
    // first.
    let broken = CampaignSpec::builder()
        .scenario_set(ScenarioSet::Standard, 12)
        .solvers(["dp_powr"])
        .build();
    if let Err(e) = broken.validate(&registry) {
        println!("a broken spec fails at load time:\n  {e}\n");
    }

    let spec = CampaignSpec::load(&path).expect("the spec loads");
    let campaign = match spec.validate(&registry) {
        Ok(campaign) => campaign,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{path}: {} scenarios × {} instances × {} solvers, seed {}, \
         cost bound {}",
        campaign.scenarios.len(),
        campaign.instances_per_scenario,
        campaign.solvers.len(),
        campaign.seed,
        campaign
            .cost_bound
            .map_or("∞".to_string(), |b| format!("{b}")),
    );

    // A validated campaign cannot fail to configure a fleet.
    let fleet = Fleet::try_new(&registry, campaign.fleet_config()).expect("validated config");
    let report = fleet.run_space(&campaign.space());

    // The spec even names its preferred rendering.
    println!("{}", render(&report, campaign.output));
    println!(
        "digest: {} cells, checksum {:016x} — rerunning this spec \
         reproduces these bytes exactly",
        report.cell_count, report.cell_checksum
    );
}
