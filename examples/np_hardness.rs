//! Theorem 2, live: deciding 2-Partition with the power DP.
//!
//! §4.2 of the paper proves `MinPower` NP-complete by reduction from
//! 2-Partition. This example builds the Figure 3 gadget for a few
//! instances, solves them *optimally* with the (fixed-parameter) DP and
//! shows that the optimal power crosses the threshold `P_max` exactly when
//! the partition exists.
//!
//! ```text
//! cargo run --example np_hardness
//! ```

use power_replica::prelude::*;

fn main() {
    let instances: [(&str, Vec<u64>); 4] = [
        ("YES: {1,4} = {2,3}", vec![1, 2, 3, 4]),
        ("YES: {2,6} = {3,5}", vec![2, 3, 5, 6]),
        ("NO : sum 20, nothing hits 10", vec![1, 5, 6, 8]),
        ("NO : sum 24, nothing hits 12", vec![3, 5, 6, 10]),
    ];

    for (label, a) in instances {
        let gadget = np_gadget::build(&a, 2).expect("valid reduction input");
        println!("--- {label} ---");
        println!(
            "integers {a:?} → {} modes, K = {}, scale D = {}",
            gadget.instance.mode_count(),
            gadget.k,
            gadget.scale
        );

        let optimal = solve_min_power(&gadget.instance).expect("gadget is feasible");
        let within = optimal.power <= gadget.p_max * (1.0 + 1e-12);
        println!(
            "optimal power {:.3e} vs P_max {:.3e} → {}",
            optimal.power,
            gadget.p_max,
            if within {
                "PARTITION EXISTS"
            } else {
                "no partition"
            }
        );
        assert_eq!(within, gadget.has_partition(), "Theorem 2 must hold");

        if within {
            let subset = gadget.partition_from_placement(&optimal.placement);
            let chosen: Vec<u64> = a
                .iter()
                .zip(&subset)
                .filter(|&(_, &sel)| sel)
                .map(|(&ai, _)| ai)
                .collect();
            let rest: Vec<u64> = a
                .iter()
                .zip(&subset)
                .filter(|&(_, &sel)| !sel)
                .map(|(&ai, _)| ai)
                .collect();
            println!("recovered partition: {chosen:?} vs {rest:?}");
        }
        println!();
    }

    println!("the DP stays polynomial only because the mode count is fixed per");
    println!("instance; the reduction needs n + 2 modes, which is exactly why");
    println!("MinPower with arbitrarily many modes is NP-complete (Theorem 2).");
}
