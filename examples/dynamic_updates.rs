//! Update strategies over a day of drifting demand (§6 of the paper).
//!
//! The paper frames dynamic replica management as a trade-off between
//! *lazy* updates (reconfigure only when the placement breaks) and
//! *systematic* updates (reconfigure every step). This example simulates
//! 48 half-hour steps of demand drift on a paper-shaped tree and compares
//! four strategies on reconfiguration cost vs resource usage, under both a
//! gentle random walk and a bursty churn model.
//!
//! ```text
//! cargo run --example dynamic_updates
//! ```

use power_replica::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use replica_sim::strategy::{StrategyConfig, StrategySummary};

fn main() {
    let config = StrategyConfig {
        steps: 48,
        capacity: 10,
        create: 0.1,
        delete: 0.01,
    };
    let strategies: [(&str, UpdateStrategy); 4] = [
        ("systematic", UpdateStrategy::Systematic),
        ("lazy", UpdateStrategy::Lazy),
        ("periodic(6)", UpdateStrategy::Periodic { period: 6 }),
        (
            "load(0.85)",
            UpdateStrategy::LoadTriggered { threshold: 0.85 },
        ),
    ];
    let evolutions: [(&str, Evolution); 2] = [
        (
            "gentle drift",
            Evolution::RandomWalk {
                step: 1,
                range: (1, 6),
            },
        ),
        (
            "bursty churn",
            Evolution::Churn {
                range: (1, 6),
                quiet_probability: 0.2,
            },
        ),
    ];

    for (evo_name, evolution) in evolutions {
        println!("=== demand model: {evo_name} ===");
        println!(
            "{:<12} {:>9} {:>11} {:>13} {:>14}",
            "strategy", "reconfigs", "total cost", "server-steps", "broken steps"
        );
        for (name, strategy) in strategies {
            // Same tree and demand sequence for every strategy.
            let tree = random_tree(
                &GeneratorConfig::paper_fat(80),
                &mut StdRng::seed_from_u64(42),
            );
            let mut evo_rng = StdRng::seed_from_u64(4242);
            let records = run_with_strategy(tree, evolution, strategy, config, &mut evo_rng)
                .expect("paper workloads stay feasible");
            let summary = StrategySummary::from_records(&records);
            println!(
                "{:<12} {:>9} {:>11.2} {:>13} {:>14}",
                name,
                summary.reconfigurations,
                summary.total_cost,
                summary.server_steps,
                summary.invalid_steps
            );
        }
        println!();
    }

    println!("reading: under gentle drift, lazy/periodic skip a third of the");
    println!("reconfigurations at the same service quality — cheaper, slightly");
    println!("staler placements. Under bursty churn every placement breaks");
    println!("every step and all strategies degenerate to systematic: exactly");
    println!("the §6 observation that the *rates and amplitudes* of request");
    println!("variation decide the right update interval. Note also that");
    println!("cost-optimal placements are tightly packed (W is saturated), so");
    println!("rising demand almost always forces an update — slack only comes");
    println!("from demand drops.");
}
