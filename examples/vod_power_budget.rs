//! Video-on-demand replica planning under a power budget.
//!
//! The paper motivates replica placement with "electronic, ISP, or VOD
//! service delivery": a content provider serves regional clients through a
//! fixed distribution tree and must decide which points of presence get a
//! replica of the catalog, at which speed each server runs, and how much
//! reconfiguration is acceptable when demand shifts (e.g. an evening peak).
//!
//! This example builds a three-tier VOD hierarchy (country → region → metro
//! area), plans a daytime configuration, then replans the evening peak
//! under several reconfiguration budgets, showing the cost/power trade-off
//! that the bi-criteria DP exposes as a Pareto front.
//!
//! ```text
//! cargo run --example vod_power_budget
//! ```

use power_replica::prelude::*;
use replica_tree::ClientId;

/// Builds the VOD hierarchy; returns the tree plus the metro-level client
/// handles so that demand can be reshaped later.
fn build_hierarchy() -> (Tree, Vec<ClientId>) {
    let mut b = TreeBuilder::new();
    let country = b.root();
    let mut clients = Vec::new();
    // 4 regions × 5 metro areas; daytime demand is light (1–3 streams).
    for region in 0..4u64 {
        let r = b.add_child(country);
        for metro in 0..5u64 {
            let m = b.add_child(r);
            let daytime = 1 + (region + metro) % 3;
            clients.push(b.add_client(m, daytime));
        }
    }
    (b.build().expect("hand-built hierarchy is valid"), clients)
}

/// Evening peak: every metro's demand grows, prime-time metros spike.
fn apply_evening_peak(tree: &mut Tree, clients: &[ClientId]) {
    for (i, &c) in clients.iter().enumerate() {
        let base = tree.requests(c);
        let spike = if i % 4 == 0 { 4 } else { 2 };
        tree.set_requests(c, base + spike);
    }
}

fn main() {
    let (mut tree, clients) = build_hierarchy();

    // Server hardware: a slow eco mode (6 streams) and a fast mode
    // (12 streams); Eq. 3 with α = 3 and a realistic static share.
    let modes = ModeSet::new(vec![6, 12]).unwrap();
    let power_model = PowerModel::new(modes.capacity(0) as f64 * 4.0, 3.0);

    // --- Phase 1: daytime plan, no servers exist yet. -------------------
    let daytime = Instance::builder(tree.clone())
        .modes(modes.clone())
        .cost(CostModel::uniform(2, 0.5, 0.05, 0.01))
        .power(power_model)
        .build()
        .unwrap();
    let day_dp = PowerDp::run(&daytime).expect("feasible");
    let day_plan = day_dp
        .reconstruct(day_dp.best_within(f64::INFINITY).expect("unconstrained"))
        .expect("reconstructible");
    println!(
        "=== daytime ({} streams) ===",
        daytime.tree().total_requests()
    );
    println!(
        "{} servers, power {:.0}\nreplicas at: {:?}\n",
        day_plan.servers,
        day_plan.power,
        day_plan.placement.server_nodes()
    );

    // --- Phase 2: evening peak, yesterday's servers pre-exist. ----------
    apply_evening_peak(&mut tree, &clients);
    let pre: PreExisting = day_plan.placement.servers().collect();
    let evening = Instance::builder(tree)
        .modes(modes)
        .pre_existing(pre)
        .cost(CostModel::uniform(2, 0.5, 0.05, 0.01))
        .power(power_model)
        .build()
        .unwrap();
    println!(
        "=== evening peak ({} streams) ===",
        evening.tree().total_requests()
    );
    let evening_dp = PowerDp::run(&evening).expect("feasible");

    println!("reconfiguration budget → optimal plan:");
    for budget in [6.0, 8.0, 10.0, 14.0, f64::INFINITY] {
        match evening_dp.best_within(budget) {
            Some(best) => {
                let plan = evening_dp.reconstruct(best).expect("reconstructible");
                let eco = plan
                    .placement
                    .servers()
                    .filter(|&(_, mode)| mode == 0)
                    .count();
                println!(
                    "  budget {budget:>8.1}: {} servers ({eco} eco), cost {:.2}, power {:.0}",
                    plan.servers, plan.cost, plan.power
                );
            }
            None => println!("  budget {budget:>8.1}: no feasible plan"),
        }
    }

    // The full trade-off curve, ready for capacity planning dashboards.
    println!("\ncost/power Pareto front:");
    for (cost, power) in evening_dp.pareto_front() {
        println!("  cost {cost:7.2} → power {power:8.0}");
    }
}
