//! Exact bi-criteria optimization at datacenter scale.
//!
//! The paper stops its with-pre-existing power experiments at 70 nodes
//! (an hour of 2010-era compute). This example pushes the same exact
//! optimizer three orders of magnitude further through the flat
//! post-order layout (`replica_tree::layout`) and the per-thread solve
//! arena:
//!
//! * a **100 000-node** CDN-style tree is laid out flat in milliseconds,
//!   and every solver below iterates that layout — no pointer chasing;
//! * the linear paths (`greedy`, `greedy_power`) solve the 10⁵-node
//!   instance in milliseconds;
//! * the dominance-pruned exact DP (`dp_power`, see DESIGN.md) solves it
//!   in ~a second under an energy-proportional power model (α = 1),
//!   where per-flow Pareto frontiers stay compact;
//! * under the paper's superlinear Experiment-3 model (α = 3) the exact
//!   frontier itself grows with subtree size, so the exact DP runs on a
//!   10 000-node instance — still 140× the paper's ceiling — and the
//!   certified lower bounds frame both answers.
//!
//! ```text
//! cargo run --release --example datacenter_scale
//! ```

use power_replica::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use replica_core::{bounds, dp_power_pruned::PrunedPowerDp, greedy, greedy_power, SolveArena};
use replica_tree::FlatTree;
use std::time::Instant;

/// Fat CDN-style tree: every node is an edge PoP with 1–5 request units.
fn fat_tree(nodes: usize, rng: &mut StdRng) -> Tree {
    let config = GeneratorConfig {
        internal_nodes: nodes,
        children_range: (6, 9),
        client_probability: 1.0,
        requests_range: (1, 5),
    };
    random_tree(&config, rng)
}

/// 10% of the fleet already runs replicas (yesterday's configuration).
fn instance_with(tree: Tree, power: PowerModel, rng: &mut StdRng) -> Instance {
    let pre = random_pre_existing(&tree, tree.internal_count() / 10, rng);
    let modes = ModeSet::new(vec![5, 10]).unwrap();
    Instance::builder(tree)
        .modes(modes)
        .pre_existing(PreExisting::at_mode(pre, 1))
        .cost(CostModel::uniform(2, 0.1, 0.01, 0.001))
        .power(power)
        .build()
        .expect("valid instance")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(100_000);
    let modes = ModeSet::new(vec![5, 10]).unwrap();

    // ---- The 10⁵-node workload, laid out flat. --------------------------
    let tree = fat_tree(100_000, &mut rng);
    println!("=== workload ===\n{}\n", TreeStats::compute(&tree));

    let start = Instant::now();
    let flat = FlatTree::new(&tree);
    println!(
        "flat post-order layout of {} nodes: {:.1?} ({} positions, total demand {})\n",
        tree.internal_count(),
        start.elapsed(),
        flat.len(),
        flat.subtree_load(flat.root_position()),
    );

    let instance = instance_with(tree, PowerModel::new(10.0, 1.0), &mut rng);
    let mut arena = SolveArena::new();

    // Certified bounds come first: they are O(N) and frame the answer.
    let lb_servers = bounds::min_servers(instance.tree(), instance.max_capacity());
    let lb_power = bounds::min_power(&instance);
    let lb_cost = bounds::min_cost(&instance);
    println!("certified lower bounds: ≥ {lb_servers} servers, power ≥ {lb_power:.0}, cost ≥ {lb_cost:.1}\n");

    // The linear solvers barely notice 10⁵ nodes.
    arena.flat.rebuild(instance.tree());
    let start = Instant::now();
    let gr =
        greedy::greedy_min_replicas_flat(&arena.flat, instance.max_capacity(), &mut arena.greedy)
            .expect("feasible");
    println!(
        "greedy (min replicas):        {:>10.1?}  {} servers (lower bound {})",
        start.elapsed(),
        gr.servers,
        lb_servers
    );

    let start = Instant::now();
    let sweep = greedy_power::paper_sweep_in(&instance, &mut arena);
    let gp = greedy_power::best_within(&sweep, f64::INFINITY).expect("feasible");
    println!(
        "greedy_power (paper sweep):   {:>10.1?}  {} servers, cost {:.1}, power {:.0}",
        start.elapsed(),
        gp.servers,
        gp.cost,
        gp.power
    );

    // The exact DP at 10⁵ nodes: energy-proportional regime, compact
    // per-flow frontiers, near-linear runtime.
    let start = Instant::now();
    let dp = PrunedPowerDp::run_in(&instance, &mut arena.pruned).expect("feasible");
    let elapsed = start.elapsed();
    let best = *dp.best_within(f64::INFINITY).expect("unconstrained");
    let placement = dp.reconstruct(&best).expect("reconstructible");
    println!(
        "dp_power (exact, α=1):        {:>10.1?}  {} table entries, {} root candidates",
        elapsed,
        dp.table_entries(),
        dp.candidates().len()
    );
    dp.recycle(&mut arena.pruned);

    let solution = Solution::evaluate(&instance, &placement).expect("valid placement");
    assert!((solution.power - best.power).abs() < 1e-6);
    println!(
        "  → exact optimum: {} servers ({} reused), cost {:.1}, power {:.0} ({:.2}× the certified bound)\n",
        solution.counts.total_servers(),
        solution.counts.reused_total(),
        solution.cost,
        solution.power,
        solution.power / bounds::min_power(&instance)
    );

    // ---- The paper's superlinear regime, 140× its ceiling. --------------
    // Under α = 3 splitting load across more servers keeps buying power,
    // so the exact cost/power frontier grows with subtree size; 10⁴
    // nodes is where "exact, with pre-existing" lives now.
    let tree = fat_tree(10_000, &mut rng);
    let instance = instance_with(tree, PowerModel::paper_experiment3(&modes), &mut rng);
    let lb_power = bounds::min_power(&instance);

    let start = Instant::now();
    let dp = PrunedPowerDp::run_in(&instance, &mut arena.pruned).expect("feasible");
    let elapsed = start.elapsed();
    let front = dp.pareto_front();
    println!(
        "dp_power (exact, α=3) over {} nodes: {:.1?} ({} table entries, {} root candidates)\n",
        instance.tree().internal_count(),
        elapsed,
        dp.table_entries(),
        dp.candidates().len()
    );

    println!(
        "cost/power Pareto front ({} points, endpoints + knees):",
        front.len()
    );
    let show = |i: usize| {
        let (c, p) = front[i];
        println!(
            "  cost {c:9.2} → power {p:10.0}  ({}× the power bound)",
            (p / lb_power * 100.0).round() / 100.0
        );
    };
    show(0);
    for i in [front.len() / 4, front.len() / 2, 3 * front.len() / 4] {
        show(i.min(front.len() - 1));
    }
    show(front.len() - 1);

    // Reconstruct the power-optimal plan and verify it independently.
    let best = *dp.best_within(f64::INFINITY).expect("unconstrained");
    let placement = dp.reconstruct(&best).expect("reconstructible");
    dp.recycle(&mut arena.pruned);
    let solution = Solution::evaluate(&instance, &placement).expect("valid placement");
    assert!((solution.power - best.power).abs() < 1e-6);
    println!(
        "\npower-optimal plan: {} servers ({} reused), cost {:.2}, power {:.0}",
        solution.counts.total_servers(),
        solution.counts.reused_total(),
        solution.cost,
        solution.power
    );
    println!(
        "optimality certificate: power within {:.2}× of the lower bound",
        solution.power / lb_power
    );
}
