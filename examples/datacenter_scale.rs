//! Exact bi-criteria optimization at datacenter scale.
//!
//! The paper stops its with-pre-existing power experiments at 70 nodes
//! (an hour of 2010-era compute). This example runs the *exact* optimizer
//! on a 2000-node CDN-style tree in well under a second, using the
//! dominance-pruned reformulation (`dp_power_pruned`, see DESIGN.md), and
//! sanity-checks the result against the certified lower bounds — no
//! exhaustive search required at this scale, the certificates do the job.
//!
//! ```text
//! cargo run --release --example datacenter_scale
//! ```

use power_replica::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use replica_core::{bounds, dp_power_pruned::PrunedPowerDp};
use std::time::Instant;

fn main() {
    // A 2000-node distribution tree: fat fan-out, a client on every node
    // (edge PoPs), 1–5 request units each.
    let mut rng = StdRng::seed_from_u64(2000);
    let config = GeneratorConfig {
        internal_nodes: 2000,
        children_range: (6, 9),
        client_probability: 1.0,
        requests_range: (1, 5),
    };
    let tree = random_tree(&config, &mut rng);
    println!("=== workload ===\n{}\n", TreeStats::compute(&tree));

    // 10% of the fleet already runs replicas (yesterday's configuration).
    let pre = random_pre_existing(&tree, 200, &mut rng);
    let modes = ModeSet::new(vec![5, 10]).unwrap();
    let power_model = PowerModel::paper_experiment3(&modes);
    let instance = Instance::builder(tree)
        .modes(modes)
        .pre_existing(PreExisting::at_mode(pre, 1))
        .cost(CostModel::uniform(2, 0.1, 0.01, 0.001))
        .power(power_model)
        .build()
        .expect("valid instance");

    // Certified bounds come first: they are O(N) and frame the answer.
    let lb_servers = bounds::min_servers(instance.tree(), instance.max_capacity());
    let lb_power = bounds::min_power(&instance);
    let lb_cost = bounds::min_cost(&instance);
    println!("certified lower bounds: ≥ {lb_servers} servers, power ≥ {lb_power:.0}, cost ≥ {lb_cost:.1}\n");

    // The exact Pareto front over 2000 nodes.
    let start = Instant::now();
    let dp = PrunedPowerDp::run(&instance).expect("feasible");
    let elapsed = start.elapsed();
    let front = dp.pareto_front();
    println!(
        "exact DP over {} nodes: {:.1?} ({} table entries, {} root candidates)\n",
        instance.tree().internal_count(),
        elapsed,
        dp.table_entries(),
        dp.candidates().len()
    );

    println!(
        "cost/power Pareto front ({} points, endpoints + knees):",
        front.len()
    );
    let show = |i: usize| {
        let (c, p) = front[i];
        println!(
            "  cost {c:9.2} → power {p:10.0}  ({}× the power bound)",
            (p / lb_power * 100.0).round() / 100.0
        );
    };
    show(0);
    for i in [front.len() / 4, front.len() / 2, 3 * front.len() / 4] {
        show(i.min(front.len() - 1));
    }
    show(front.len() - 1);

    // Reconstruct the power-optimal plan and verify it independently.
    let best = *dp.best_within(f64::INFINITY).expect("unconstrained");
    let placement = dp.reconstruct(&best).expect("reconstructible");
    let solution = Solution::evaluate(&instance, &placement).expect("valid placement");
    assert!((solution.power - best.power).abs() < 1e-6);
    println!(
        "\npower-optimal plan: {} servers ({} reused), cost {:.2}, power {:.0}",
        solution.counts.total_servers(),
        solution.counts.reused_total(),
        solution.cost,
        solution.power
    );
    println!(
        "optimality certificate: power within {:.2}× of the lower bound",
        solution.power / lb_power
    );
}
