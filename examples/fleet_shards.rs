//! Sharded fleet campaign, end to end: plan → work → merge → proof.
//!
//! Demonstrates the `replica-fleetd` coordinator API — splitting a
//! campaign's job space into contiguous shards, running every shard
//! through the engine (each worker generates **only its own shard's
//! jobs** from the campaign's lazy indexed job space — `O(shard)`
//! startup in time and memory), merging the shard reports in shard
//! order, and proving the merged aggregates byte-identical to a
//! single-process `Fleet::run` (digest, cell count and FNV cell
//! checksum).
//!
//! ```text
//! cargo run --release --example fleet_shards
//! ```
//!
//! Workers here run [`Workers::InProcess`] so the example is a plain
//! function call; the `fleetd` binary drives the same protocol with one
//! OS process per shard:
//!
//! ```text
//! cargo run --release --bin fleetd -- run --scenarios extended --shards 4
//! ```
//!
//! (`examples/fleet_sweep.rs` remains the single-process fleet demo.)

use power_replica::engine::{CampaignSpec, Registry, ScenarioSet};
use power_replica::fleetd::coordinator::{prove_against_single_process, run_plan, Workers};
use power_replica::fleetd::ShardPlan;

fn main() {
    let shards = 4;
    // One declarative spec describes the whole campaign; validation
    // against the registry happens here, before any job runs.
    let campaign = CampaignSpec::builder()
        .scenario_set(ScenarioSet::Extended, 24)
        .instances_per_scenario(3)
        .solvers(["dp_power", "greedy_power", "heur_power_greedy"])
        .seed(0x5EED)
        .build()
        .validate(&Registry::with_all())
        .expect("the spec is valid");

    let plan = ShardPlan::new(campaign, shards).expect("shard count is positive");
    println!(
        "campaign: {} scenarios × {} instances × {} solvers = {} cells",
        plan.campaign.scenarios.len(),
        plan.campaign.instances_per_scenario,
        plan.campaign.solvers.len(),
        plan.campaign.job_count() * plan.campaign.solvers.len(),
    );
    for manifest in &plan.shards {
        println!(
            "  shard {}: jobs {:>3}..{:<3} ({} jobs)",
            manifest.shard,
            manifest.start,
            manifest.end,
            manifest.len()
        );
    }

    // Work + merge. Every shard replays through the engine's sequential
    // fold, so the merge is exact — and cross-checked against the
    // workers' mergeable group states on every run.
    let merged = run_plan(&plan, &Workers::InProcess).expect("campaign is valid");
    println!("\n{}", merged.table());

    // The determinism contract, demonstrated rather than assumed.
    let proof = prove_against_single_process(&plan, &merged).expect("sharding is deterministic");
    println!("{proof}");
}
